package plfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/vfs"
)

func twoBackends() (*FS, *vfs.MemFS, *vfs.MemFS) {
	ssd := vfs.NewMemFS()
	hdd := vfs.NewMemFS()
	p, err := New(
		Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		panic(err)
	}
	return p, ssd, hdd
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("no backends should fail")
	}
	m := vfs.NewMemFS()
	if _, err := New(Backend{Name: "a", FS: m}, Backend{Name: "a", FS: m}); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := New(Backend{Name: "a"}); err == nil {
		t.Error("nil FS should fail")
	}
}

func TestContainerLifecycle(t *testing.T) {
	p, ssd, hdd := twoBackends()
	if p.ContainerExists("/bar") {
		t.Error("container should not exist yet")
	}
	if err := p.CreateContainer("/bar"); err != nil {
		t.Fatal(err)
	}
	if !p.ContainerExists("/bar") {
		t.Error("container should exist")
	}
	// Fig 6: a top-level directory per mount.
	for _, fsys := range []*vfs.MemFS{ssd, hdd} {
		info, err := fsys.Stat("/mnt1/bar")
		if fsys == hdd {
			info, err = fsys.Stat("/mnt2/bar")
		}
		if err != nil || !info.IsDir {
			t.Errorf("container dir missing: %+v, %v", info, err)
		}
	}

	// Write droppings to different backends.
	wp, err := p.CreateDropping("/bar", "subset.p", "ssd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wp.Write([]byte("protein-data")); err != nil {
		t.Fatal(err)
	}
	wp.Close()
	wm, err := p.CreateDropping("/bar", "subset.m", "hdd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wm.Write([]byte("misc")); err != nil {
		t.Fatal(err)
	}
	wm.Close()

	// Data landed on the right backends.
	if got, err := vfs.ReadFile(ssd, "/mnt1/bar/subset.p"); err != nil || string(got) != "protein-data" {
		t.Errorf("ssd dropping = %q, %v", got, err)
	}
	if got, err := vfs.ReadFile(hdd, "/mnt2/bar/subset.m"); err != nil || string(got) != "misc" {
		t.Errorf("hdd dropping = %q, %v", got, err)
	}

	// Index resolves reads.
	f, err := p.OpenDropping("/bar", "subset.p")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.Size())
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !bytes.Equal(buf, []byte("protein-data")) {
		t.Errorf("read %q", buf)
	}

	idx, err := p.Index("/bar")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("index = %+v", idx)
	}
	if idx[0].Name != "subset.m" || idx[0].Backend != "hdd" || idx[0].Size != 4 {
		t.Errorf("idx[0] = %+v", idx[0])
	}
	if idx[1].Name != "subset.p" || idx[1].Backend != "ssd" || idx[1].Size != 12 {
		t.Errorf("idx[1] = %+v", idx[1])
	}

	d, err := p.StatDropping("/bar", "subset.p")
	if err != nil || d.Size != 12 || d.Backend != "ssd" {
		t.Errorf("StatDropping = %+v, %v", d, err)
	}

	if err := p.RemoveContainer("/bar"); err != nil {
		t.Fatal(err)
	}
	if p.ContainerExists("/bar") {
		t.Error("container should be gone")
	}
	if vfs.Exists(ssd, "/mnt1/bar") || vfs.Exists(hdd, "/mnt2/bar") {
		t.Error("container dirs should be gone")
	}
}

func TestCreateDroppingValidation(t *testing.T) {
	p, _, _ := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateDropping("/c", "d", "nvme"); err == nil {
		t.Error("unknown backend should fail")
	}
	for _, bad := range []string{"", "a/b", ".plfs_index", "x\ty"} {
		if _, err := p.CreateDropping("/c", bad, "ssd"); err == nil {
			t.Errorf("dropping name %q should be rejected", bad)
		}
	}
	if _, err := p.CreateDropping("/missing", "d", "ssd"); err == nil {
		t.Error("missing container should fail")
	}
}

func TestRecreateDroppingRepoints(t *testing.T) {
	p, _, _ := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	w, err := p.CreateDropping("/c", "d", "ssd")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("v1"))
	w.Close()
	// Re-create on the other backend; index must follow.
	w, err = p.CreateDropping("/c", "d", "hdd")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("v2"))
	w.Close()
	d, err := p.StatDropping("/c", "d")
	if err != nil || d.Backend != "hdd" {
		t.Errorf("dropping = %+v, %v", d, err)
	}
	idx, err := p.Index("/c")
	if err != nil || len(idx) != 1 {
		t.Errorf("index = %+v, %v", idx, err)
	}
	f, err := p.OpenDropping("/c", "d")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	f.Read(buf)
	if string(buf) != "v2" {
		t.Errorf("read %q", buf)
	}
}

func TestOpenMissingDropping(t *testing.T) {
	p, _, _ := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenDropping("/c", "nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("err = %v", err)
	}
	if _, err := p.OpenDropping("/nope", "d"); err == nil {
		t.Error("missing container should fail")
	}
}

func TestIndexSurvivesReload(t *testing.T) {
	// A second FS instance over the same backends sees the same containers:
	// the index is durable state on the canonical backend, not process memory.
	ssd := vfs.NewMemFS()
	hdd := vfs.NewMemFS()
	mk := func() *FS {
		p, err := New(
			Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
			Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
		)
		if err != nil {
			panic(err)
		}
		return p
	}
	p1 := mk()
	if err := p1.CreateContainer("/t"); err != nil {
		t.Fatal(err)
	}
	w, err := p1.CreateDropping("/t", "d", "hdd")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("persist"))
	w.Close()

	p2 := mk()
	if !p2.ContainerExists("/t") {
		t.Fatal("second instance does not see container")
	}
	f, err := p2.OpenDropping("/t", "d")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	f.Read(buf)
	if string(buf) != "persist" {
		t.Errorf("read %q", buf)
	}
}

func TestBackendsOrder(t *testing.T) {
	p, _, _ := twoBackends()
	got := p.Backends()
	if len(got) != 2 || got[0] != "ssd" || got[1] != "hdd" {
		t.Errorf("Backends = %v", got)
	}
}

func TestListContainers(t *testing.T) {
	p, _, _ := twoBackends()
	names, err := p.ListContainers()
	if err != nil || len(names) != 0 {
		t.Fatalf("empty store: %v, %v", names, err)
	}
	for _, n := range []string{"/b.xtc", "/a.xtc", "/deep/run1.xtc"} {
		if err := p.CreateContainer(n); err != nil {
			t.Fatal(err)
		}
	}
	names, err = p.ListContainers()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/a.xtc", "/b.xtc", "/deep/run1.xtc"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
		}
	}
	if err := p.RemoveContainer("/a.xtc"); err != nil {
		t.Fatal(err)
	}
	names, _ = p.ListContainers()
	if len(names) != 2 {
		t.Errorf("after remove: %v", names)
	}
}
