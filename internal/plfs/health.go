package plfs

import (
	"errors"
	"fmt"

	"repro/internal/vfs"
)

// Backend health. A backend whose FS surfaces vfs.ErrBackendDown — the
// rpc client does so once its retry budget is exhausted — is marked down,
// and every later dispatch to it fails fast with a typed error instead of
// re-running the transport's whole backoff schedule (or, pre-retry-policy,
// hanging). The mark is advisory: ReviveBackend or a successful Probe
// clears it, so an operator can bring a restarted storage node back
// without rebuilding the container store.

// downErrLocked is the fail-fast error for a marked backend. It wraps
// vfs.ErrBackendDown so callers can errors.Is across layers, and keeps the
// original transport error for the log line.
func (p *FS) downErrLocked(b *Backend) error {
	return fmt.Errorf("plfs: backend %q down (marked after: %v): %w",
		b.Name, p.down[b.Name], vfs.ErrBackendDown)
}

// checkLocked fails fast when b is marked down. Callers hold p.mu.
func (p *FS) checkLocked(b *Backend) error {
	if _, bad := p.down[b.Name]; bad {
		return p.downErrLocked(b)
	}
	return nil
}

// noteLocked inspects an error from b's FS and marks the backend down on
// vfs.ErrBackendDown, bumping plfs.backend.<name>.down. Callers hold p.mu.
func (p *FS) noteLocked(b *Backend, err error) {
	if err == nil || !errors.Is(err, vfs.ErrBackendDown) {
		return
	}
	if _, already := p.down[b.Name]; already {
		return
	}
	p.down[b.Name] = err
	p.count("backend." + b.Name + ".down")
}

// note is noteLocked for callers that have released p.mu.
func (p *FS) note(b *Backend, err error) {
	p.mu.Lock()
	p.noteLocked(b, err)
	p.mu.Unlock()
}

// BackendHealth snapshots the down marks: a nil entry means healthy, a
// non-nil one holds the transport error that took the backend out.
func (p *FS) BackendHealth() map[string]error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]error, len(p.backends))
	for _, b := range p.backends {
		out[b.Name] = p.down[b.Name]
	}
	return out
}

// ReviveBackend clears a down mark, re-admitting the backend to dispatch.
func (p *FS) ReviveBackend(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byName[name]; !ok {
		return fmt.Errorf("plfs: unknown backend %q", name)
	}
	delete(p.down, name)
	return nil
}

// Probe issues one cheap stat against the backend's mount and updates the
// health mark from the outcome: success (or any non-transport error, e.g.
// the mount not existing yet) revives it, a transport failure marks it
// down. It returns the probe's transport error, if any.
func (p *FS) Probe(name string) error {
	p.mu.Lock()
	b, ok := p.byName[name]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("plfs: unknown backend %q", name)
	}
	_, err := b.FS.Stat(b.Mount)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil && errors.Is(err, vfs.ErrBackendDown) {
		p.noteLocked(b, err)
		return err
	}
	delete(p.down, name)
	return nil
}
