// Package plfs implements the container layer ADA's I/O dispatcher is built
// on, after PLFS (Bent et al., SC '09): a logical file is represented as a
// container — a same-named directory on every backend mount — holding
// "dropping" files with the actual data plus an index that records which
// backend owns each dropping.
//
// The underlying file systems see ordinary directories and files and never
// know the logical file was decomposed; that transparency is what lets ADA
// steer the protein subset to an SSD-backed file system and the MISC subset
// to an HDD-backed one (Fig 6 of the paper).
package plfs

import (
	"bufio"
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// indexFileName is the per-container index dropping. It always lives on the
// first backend (the "canonical" mount).
const indexFileName = ".plfs_index"

// Backend is one mount the container spans.
type Backend struct {
	Name  string // e.g. "ssd", "hdd"
	FS    vfs.FS
	Mount string // path prefix inside FS, e.g. "/mnt1"
}

// Dropping describes one data dropping within a container.
type Dropping struct {
	Name    string // dropping file name, e.g. "subset.p"
	Backend string // owning backend name
	Size    int64
}

// ErrCrossBackend is returned by RenameDropping when the rename would
// shadow a dropping owned by a different backend. A rename is atomic only
// within one backend; pretending otherwise would need a non-atomic delete
// on the other mount whose failure point corrupts the index. Cross-backend
// replacement is ReplaceDropping's job, which orders its steps so every
// crash point is recoverable.
var ErrCrossBackend = errors.New("plfs: cross-backend rename")

// FS is a PLFS-like container store over multiple backends.
type FS struct {
	mu       sync.Mutex
	backends []Backend
	byName   map[string]*Backend
	down     map[string]error // backend name -> transport error that marked it down
	usage    map[string]int64 // backend name -> bytes of dropping data on disk
	seeded   map[string]bool  // backend name -> usage counter seeded from a walk
	reg      *metrics.Registry
	// bytesGauge caches each backend's usage gauge: the ingest write path
	// updates usage once per frame per subset, and rebuilding the metric
	// name allocates on every call. Reset when reg changes (SetMetrics).
	bytesGauge map[string]*metrics.Gauge
}

// New returns a container store over the given backends. Backend names must
// be unique; the first backend hosts container indexes.
func New(backends ...Backend) (*FS, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("plfs: no backends")
	}
	p := &FS{
		byName: map[string]*Backend{},
		down:   map[string]error{},
		usage:  map[string]int64{},
		seeded: map[string]bool{},
		reg:    metrics.Default,
	}
	for i := range backends {
		b := backends[i]
		if b.FS == nil {
			return nil, fmt.Errorf("plfs: backend %q has no file system", b.Name)
		}
		if _, dup := p.byName[b.Name]; dup {
			return nil, fmt.Errorf("plfs: duplicate backend %q", b.Name)
		}
		b.Mount = vfs.Clean(b.Mount)
		p.backends = append(p.backends, b)
		p.byName[b.Name] = &p.backends[i]
	}
	return p, nil
}

// SetMetrics points the store's dispatch counters at reg (metrics.Default
// by default; nil disables collection). Call before serving traffic.
func (p *FS) SetMetrics(reg *metrics.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.bytesGauge = nil
	for name, v := range p.usage {
		p.usageGaugeLocked(name).Set(v)
	}
}

// count bumps one dispatch counter, namespaced per backend so the paper's
// SSD-vs-HDD steering is visible at runtime:
//
//	plfs.backend.<name>.droppings_created
//	plfs.backend.<name>.droppings_opened
//	plfs.containers_created / plfs.containers_removed
func (p *FS) count(name string) { p.reg.Counter("plfs." + name).Inc() }

// Backends returns the backend names in configuration order.
func (p *FS) Backends() []string {
	names := make([]string, len(p.backends))
	for i, b := range p.backends {
		names[i] = b.Name
	}
	return names
}

// containerPath returns the container directory for logical on backend b.
func containerPath(b *Backend, logical string) string {
	return path.Join(b.Mount, vfs.Clean(logical))
}

// CreateContainer creates the container structure for a logical file on
// every backend (a top-level directory per mount, as in Fig 6).
func (p *FS) CreateContainer(logical string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.backends {
		b := &p.backends[i]
		if err := p.checkLocked(b); err != nil {
			return err
		}
		if err := b.FS.MkdirAll(containerPath(b, logical)); err != nil {
			p.noteLocked(b, err)
			return fmt.Errorf("plfs: create container on %s: %w", b.Name, err)
		}
	}
	p.count("containers_created")
	return p.writeIndexLocked(logical, nil)
}

// ContainerExists reports whether the logical file has a container.
func (p *FS) ContainerExists(logical string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.readIndexLocked(logical)
	return err == nil
}

// CreateDropping opens a new dropping for writing on the named backend and
// records it in the container index. The caller must Close the returned
// file before reading it back.
func (p *FS) CreateDropping(logical, dropping, backend string) (vfs.File, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.byName[backend]
	if !ok {
		return nil, fmt.Errorf("plfs: unknown backend %q", backend)
	}
	if err := p.checkLocked(b); err != nil {
		return nil, err
	}
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return nil, err
	}
	if strings.ContainsAny(dropping, "/\t\n") || dropping == "" || dropping == indexFileName {
		return nil, fmt.Errorf("plfs: invalid dropping name %q", dropping)
	}
	// Best-effort early full check: capacity-bounded backends (blockfs)
	// expose FreeBytes. Failing here — before the index records the
	// dropping — hands ingest and the tier planner a clean vfs.ErrNoSpace
	// instead of a torn write discovered halfway through the data.
	if fb, ok := b.FS.(interface{ FreeBytes() int64 }); ok && fb.FreeBytes() <= 0 {
		return nil, fmt.Errorf("plfs: create dropping on %s: %w", b.Name, vfs.ErrNoSpace)
	}
	p.ensureUsageLocked(b)
	full := path.Join(containerPath(b, logical), dropping)
	// The index tells us whether Create will truncate an existing file on
	// this backend; only then is a stat needed for the accounting delta.
	var prev int64
	for _, d := range idx {
		if d.Name == dropping && d.Backend == backend {
			prev = statSize(b, logical, dropping)
			break
		}
	}
	f, err := b.FS.Create(full)
	if err != nil {
		p.noteLocked(b, err)
		return nil, fmt.Errorf("plfs: create dropping: %w", err)
	}
	if prev != 0 {
		p.addUsageLocked(b.Name, -prev) // Create truncated the old content
	}
	// Record (or re-point) the dropping.
	out := idx[:0]
	for _, d := range idx {
		if d.Name != dropping {
			out = append(out, d)
		}
	}
	out = append(out, Dropping{Name: dropping, Backend: backend})
	if err := p.writeIndexLocked(logical, out); err != nil {
		f.Close()
		return nil, err
	}
	p.count("backend." + backend + ".droppings_created")
	return &acctFile{File: f, fs: p, backend: b.Name}, nil
}

// OpenDropping opens an existing dropping for reading, resolving its
// backend through the container index.
func (p *FS) OpenDropping(logical, dropping string) (vfs.File, error) {
	p.mu.Lock()
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	var owner *Backend
	for _, d := range idx {
		if d.Name == dropping {
			owner = p.byName[d.Backend]
			break
		}
	}
	if owner != nil {
		if err := p.checkLocked(owner); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	p.mu.Unlock()
	if owner == nil {
		return nil, fmt.Errorf("%w: dropping %q in container %q", vfs.ErrNotExist, dropping, logical)
	}
	p.count("backend." + owner.Name + ".droppings_opened")
	f, err := owner.FS.Open(path.Join(containerPath(owner, logical), dropping))
	if err != nil {
		p.note(owner, err)
		return nil, err
	}
	return f, nil
}

// StatDropping returns index info plus the current size of a dropping.
func (p *FS) StatDropping(logical, dropping string) (Dropping, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return Dropping{}, err
	}
	for _, d := range idx {
		if d.Name != dropping {
			continue
		}
		b := p.byName[d.Backend]
		if err := p.checkLocked(b); err != nil {
			return Dropping{}, err
		}
		info, err := b.FS.Stat(path.Join(containerPath(b, logical), dropping))
		if err != nil {
			p.noteLocked(b, err)
			return Dropping{}, err
		}
		d.Size = info.Size
		return d, nil
	}
	return Dropping{}, fmt.Errorf("%w: dropping %q in container %q", vfs.ErrNotExist, dropping, logical)
}

// Index lists the container's droppings with up-to-date sizes.
func (p *FS) Index(logical string) ([]Dropping, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return nil, err
	}
	for i := range idx {
		b, ok := p.byName[idx[i].Backend]
		if !ok {
			return nil, fmt.Errorf("plfs: index references unknown backend %q", idx[i].Backend)
		}
		info, err := b.FS.Stat(path.Join(containerPath(b, logical), idx[i].Name))
		if err == nil {
			idx[i].Size = info.Size
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].Name < idx[j].Name })
	return idx, nil
}

// ListContainers returns the logical names of every container, discovered
// by walking the canonical backend for index droppings.
func (p *FS) ListContainers() ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	canon := &p.backends[0]
	if !vfs.Exists(canon.FS, canon.Mount) {
		return nil, nil // no container ever created
	}
	var out []string
	err := vfs.Walk(canon.FS, canon.Mount, func(path string, info vfs.FileInfo) error {
		if info.Name != indexFileName {
			return nil
		}
		dir := path[:len(path)-len("/"+indexFileName)]
		logical := strings.TrimPrefix(dir, strings.TrimSuffix(canon.Mount, "/"))
		if logical == "" {
			logical = "/"
		}
		out = append(out, logical)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("plfs: list containers: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// RemoveContainer deletes a logical file: every dropping, the index, and
// the container directories. It sweeps the directories themselves rather
// than trusting the index, so it also disposes of torn containers — ones a
// crash left with orphan droppings, a stale index temp file, or no
// readable index at all — which is what crash recovery relies on.
func (p *FS) RemoveContainer(logical string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	found := false
	for i := range p.backends {
		b := &p.backends[i]
		if err := p.checkLocked(b); err != nil {
			return err
		}
		dir := containerPath(b, logical)
		if !vfs.Exists(b.FS, dir) {
			continue
		}
		found = true
		p.ensureUsageLocked(b)
		entries, err := b.FS.ReadDir(dir)
		if err != nil {
			p.noteLocked(b, err)
			return fmt.Errorf("plfs: remove container on %s: %w", b.Name, err)
		}
		for _, e := range entries {
			if e.IsDir {
				return fmt.Errorf("plfs: unexpected directory %q in container %q", e.Name, logical)
			}
			if err := b.FS.Remove(path.Join(dir, e.Name)); err != nil {
				p.noteLocked(b, err)
				return fmt.Errorf("plfs: remove dropping %q: %w", e.Name, err)
			}
			if countedFile(e.Name) {
				p.addUsageLocked(b.Name, -e.Size)
			}
		}
		if err := b.FS.Remove(dir); err != nil {
			p.noteLocked(b, err)
			return fmt.Errorf("plfs: remove container dir on %s: %w", b.Name, err)
		}
	}
	if !found {
		return fmt.Errorf("%w: container %q", vfs.ErrNotExist, logical)
	}
	p.count("containers_removed")
	return nil
}

// RenameDropping atomically renames a dropping within its container and
// re-points the index entry — the primitive the crash-consistent commit
// protocol publishes staged droppings with. Renaming over an existing
// dropping replaces it.
func (p *FS) RenameDropping(logical, oldname, newname string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if strings.ContainsAny(newname, "/\t\n") || newname == "" || newname == indexFileName {
		return fmt.Errorf("plfs: invalid dropping name %q", newname)
	}
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return err
	}
	owner := ""
	for _, d := range idx {
		if d.Name == oldname {
			owner = d.Backend
			break
		}
	}
	if owner == "" {
		return fmt.Errorf("%w: dropping %q in container %q", vfs.ErrNotExist, oldname, logical)
	}
	// Refuse to shadow a dropping on another backend: the rename below is
	// atomic only on owner's mount, and the shadowed file could only be
	// cleaned up by a separate delete whose crash point leaves the index
	// pointing at a removed file. Callers that mean "move across backends"
	// use ReplaceDropping.
	for _, d := range idx {
		if d.Name == newname && d.Backend != owner {
			return fmt.Errorf("%w: %q is on %s but %q is on %s",
				ErrCrossBackend, oldname, owner, newname, d.Backend)
		}
	}
	b := p.byName[owner]
	if b == nil {
		return fmt.Errorf("plfs: index references unknown backend %q", owner)
	}
	if err := p.checkLocked(b); err != nil {
		return err
	}
	dir := containerPath(b, logical)
	p.ensureUsageLocked(b)
	// Cross-backend shadows were rejected above, so an index entry for
	// newname means a same-backend file the rename will overwrite.
	var prev int64
	for _, d := range idx {
		if d.Name == newname {
			prev = statSize(b, logical, newname)
			break
		}
	}
	if err := b.FS.Rename(path.Join(dir, oldname), path.Join(dir, newname)); err != nil {
		p.noteLocked(b, err)
		return fmt.Errorf("plfs: rename dropping %q: %w", oldname, err)
	}
	if prev != 0 {
		p.addUsageLocked(owner, -prev) // the rename overwrote newname
	}
	out := make([]Dropping, 0, len(idx))
	for _, d := range idx {
		if d.Name == oldname || d.Name == newname {
			continue
		}
		out = append(out, d)
	}
	out = append(out, Dropping{Name: newname, Backend: owner})
	return p.writeIndexLocked(logical, out)
}

// RemoveDropping deletes a single dropping and its index entry. A missing
// file with a live index entry (half-completed crash cleanup) is treated
// as already gone.
func (p *FS) RemoveDropping(logical, dropping string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.readIndexLocked(logical)
	if err != nil {
		return err
	}
	owner := ""
	out := make([]Dropping, 0, len(idx))
	for _, d := range idx {
		if d.Name == dropping {
			owner = d.Backend
			continue
		}
		out = append(out, d)
	}
	if owner == "" {
		return fmt.Errorf("%w: dropping %q in container %q", vfs.ErrNotExist, dropping, logical)
	}
	b := p.byName[owner]
	if b == nil {
		return fmt.Errorf("plfs: index references unknown backend %q", owner)
	}
	if err := p.checkLocked(b); err != nil {
		return err
	}
	p.ensureUsageLocked(b)
	full := path.Join(containerPath(b, logical), dropping)
	sz := statSize(b, logical, dropping)
	if err := b.FS.Remove(full); err != nil &&
		!errors.Is(err, vfs.ErrNotExist) {
		p.noteLocked(b, err)
		return fmt.Errorf("plfs: remove dropping %q: %w", dropping, err)
	}
	if sz != 0 {
		p.addUsageLocked(b.Name, -sz)
	}
	return p.writeIndexLocked(logical, out)
}

// The index format is one dropping per line: "<name>\t<backend>".

func (p *FS) indexPath(logical string) string {
	return path.Join(containerPath(&p.backends[0], logical), indexFileName)
}

// writeIndexLocked persists the index atomically: the lines are written to
// a temp sibling and renamed over the index dropping, so a crash mid-write
// can tear the temp file but never the index readers resolve droppings
// through.
func (p *FS) writeIndexLocked(logical string, idx []Dropping) error {
	var sb strings.Builder
	for _, d := range idx {
		fmt.Fprintf(&sb, "%s\t%s\n", d.Name, d.Backend)
	}
	if err := vfs.ReplaceFile(p.backends[0].FS, p.indexPath(logical), []byte(sb.String())); err != nil {
		p.noteLocked(&p.backends[0], err)
		return fmt.Errorf("plfs: write index for %q: %w", logical, err)
	}
	return nil
}

func (p *FS) readIndexLocked(logical string) ([]Dropping, error) {
	canon := &p.backends[0]
	if err := p.checkLocked(canon); err != nil {
		return nil, err
	}
	data, err := vfs.ReadFile(canon.FS, p.indexPath(logical))
	if err != nil {
		p.noteLocked(canon, err)
		return nil, fmt.Errorf("plfs: container %q: %w", logical, err)
	}
	var idx []Dropping
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("plfs: corrupt index for %q at line %s",
				logical, strconv.Itoa(line))
		}
		idx = append(idx, Dropping{Name: parts[0], Backend: parts[1]})
	}
	return idx, nil
}
