package plfs

import (
	"path"
	"strings"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// Per-backend byte accounting. The tier planner's watermark decisions and
// the plfs.backend.<name>.bytes gauges both read from here, so the numbers
// must stay correct without walking the mounts on every query: the store
// walks each backend once — lazily, the first time an operation touches it
// or Usage is queried — to seed the counter, then every mutating operation
// (dropping writes, truncating re-creates, renames over existing files,
// removes, orphan sweeps) applies its delta inline. The seed walk replaces
// whatever the counter held, so the walk's disk truth wins over any deltas
// applied before it ran.
//
// Only dropping data counts. Container indexes and the ".tmp" siblings the
// atomic-replace protocol stages are bookkeeping, not placed data, and are
// excluded both from the seed walk and from the incremental updates.

// countedFile reports whether a container file participates in usage
// accounting.
func countedFile(name string) bool {
	return name != indexFileName && !strings.HasSuffix(name, ".tmp")
}

// ensureUsageLocked seeds a backend's usage counter from one walk of its
// mount, once. Best-effort: a missing or unreachable mount seeds as the
// bytes found so far — accounting is an advisory capacity signal, not a
// ledger, and later deltas still apply.
func (p *FS) ensureUsageLocked(b *Backend) {
	if p.seeded[b.Name] {
		return
	}
	p.seeded[b.Name] = true
	total := int64(0)
	vfs.Walk(b.FS, b.Mount, func(_ string, info vfs.FileInfo) error {
		if countedFile(info.Name) {
			total += info.Size
		}
		return nil
	})
	p.usage[b.Name] = total
	p.usageGaugeLocked(b.Name).Set(total)
}

// usageGaugeLocked returns the cached plfs.backend.<name>.bytes gauge,
// resolving it from the registry on first use (and again after SetMetrics):
// the write path updates it once per frame per subset, so per-call name
// construction would allocate in the ingest hot loop.
func (p *FS) usageGaugeLocked(name string) *metrics.Gauge {
	if g, ok := p.bytesGauge[name]; ok {
		return g
	}
	if p.bytesGauge == nil {
		p.bytesGauge = map[string]*metrics.Gauge{}
	}
	g := p.reg.Gauge("plfs.backend." + name + ".bytes")
	p.bytesGauge[name] = g
	return g
}

// addUsageLocked applies a byte delta to one backend's counter and mirrors
// it to the gauge. Clamped at zero: a subtraction racing a best-effort seed
// must not publish a negative residency.
func (p *FS) addUsageLocked(name string, delta int64) {
	v := p.usage[name] + delta
	if v < 0 {
		v = 0
	}
	p.usage[name] = v
	p.usageGaugeLocked(name).Set(v)
}

func (p *FS) addUsage(name string, delta int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addUsageLocked(name, delta)
}

// Usage reports the bytes of dropping data resident on each backend, keyed
// by backend name. The map is a copy; mutating it does not affect the
// store.
func (p *FS) Usage() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.backends))
	for i := range p.backends {
		b := &p.backends[i]
		p.ensureUsageLocked(b)
		out[b.Name] = p.usage[b.Name]
	}
	return out
}

// UsageOf reports the bytes resident on one backend (zero for unknown
// names).
func (p *FS) UsageOf(backend string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.byName[backend]; b != nil {
		p.ensureUsageLocked(b)
	}
	return p.usage[backend]
}

// acctFile wraps the writable handle CreateDropping returns so every byte
// that lands in a dropping is charged to its backend as it is written.
type acctFile struct {
	vfs.File
	fs      *FS
	backend string
}

func (f *acctFile) Write(b []byte) (int, error) {
	before := f.File.Size()
	n, err := f.File.Write(b)
	if after := f.File.Size(); after != before {
		f.fs.addUsage(f.backend, after-before)
	}
	return n, err
}

// statSize returns the size of name on b, or zero if it does not exist.
func statSize(b *Backend, logical, name string) int64 {
	info, err := b.FS.Stat(path.Join(containerPath(b, logical), name))
	if err != nil {
		return 0
	}
	return info.Size
}
