package plfs

import (
	"errors"
	"hash/crc32"
	"path"
	"time"

	"repro/internal/vfs"
)

// watchPollInterval is the local fallback poll cadence for WatchDropping.
// Backends that implement fileWatcher (the RPC client does, pushing the
// poll server-side) never pay it.
const watchPollInterval = 2 * time.Millisecond

var watchCRCTable = crc32.MakeTable(crc32.Castagnoli)

// fileWatcher is implemented by backends that can block server-side until a
// file's content changes — the RPC client forwards the whole long-poll in
// one call instead of re-reading over the wire every few milliseconds.
type fileWatcher interface {
	WatchFile(name string, lastCRC uint32, timeout time.Duration) (data []byte, crc uint32, changed bool, err error)
}

// WatchDropping blocks until the dropping's content differs from lastCRC or
// the timeout elapses, then returns the current content and its CRC32C.
// A dropping that does not exist reads as empty with CRC 0, so creation,
// replacement, and removal all count as changes. This is the notify/poll
// primitive live-head tailing is built on: readers pass the CRC of the head
// they last saw and wake when a new one is published.
func (p *FS) WatchDropping(logical, dropping string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error) {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		idx, err := p.readIndexLocked(logical)
		if err != nil {
			p.mu.Unlock()
			return nil, 0, false, err
		}
		// Resolve the owner; a dropping not (yet) in the index is watched on
		// the canonical backend, where the live head is always published.
		owner := &p.backends[0]
		for _, d := range idx {
			if d.Name == dropping {
				if b, ok := p.byName[d.Backend]; ok {
					owner = b
				}
				break
			}
		}
		if err := p.checkLocked(owner); err != nil {
			p.mu.Unlock()
			return nil, 0, false, err
		}
		full := path.Join(containerPath(owner, logical), dropping)
		fsys := owner.FS
		p.mu.Unlock()

		if fw, ok := fsys.(fileWatcher); ok {
			remaining := time.Until(deadline)
			if remaining < 0 {
				remaining = 0
			}
			return fw.WatchFile(full, lastCRC, remaining)
		}

		data, err := vfs.ReadFile(fsys, full)
		if err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return nil, 0, false, err
		}
		crc := uint32(0)
		if err == nil {
			crc = crc32.Checksum(data, watchCRCTable)
		} else {
			data = nil
		}
		if crc != lastCRC {
			return data, crc, true, nil
		}
		if remaining := time.Until(deadline); remaining <= 0 {
			return nil, lastCRC, false, nil
		} else if remaining < watchPollInterval {
			time.Sleep(remaining)
		} else {
			time.Sleep(watchPollInterval)
		}
	}
}
