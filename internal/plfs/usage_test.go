package plfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockfs"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/vfs"
)

// putDropping writes one dropping through the store.
func putDropping(t *testing.T, p *FS, logical, name, backend string, data []byte) {
	t.Helper()
	f, err := p.CreateDropping(logical, name, backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUsageAccounting(t *testing.T) {
	p, _, _ := twoBackends()
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "a", "ssd", make([]byte, 100))
	putDropping(t, p, "/c", "b", "hdd", make([]byte, 50))
	u := p.Usage()
	if u["ssd"] != 100 || u["hdd"] != 50 {
		t.Fatalf("usage = %v, want ssd:100 hdd:50", u)
	}
	if got := reg.Snapshot().Gauges["plfs.backend.ssd.bytes"]; got != 100 {
		t.Fatalf("ssd gauge = %d, want 100", got)
	}

	// Recreate truncates: the counter follows the overwrite.
	putDropping(t, p, "/c", "a", "ssd", make([]byte, 40))
	if got := p.UsageOf("ssd"); got != 40 {
		t.Fatalf("ssd usage after overwrite = %d, want 40", got)
	}
	// Rename moves bytes within the backend: no net change.
	if err := p.RenameDropping("/c", "a", "a2"); err != nil {
		t.Fatal(err)
	}
	if got := p.UsageOf("ssd"); got != 40 {
		t.Fatalf("ssd usage after rename = %d, want 40", got)
	}
	// Rename over an existing dropping subtracts the overwritten bytes.
	putDropping(t, p, "/c", "a3", "ssd", make([]byte, 7))
	if err := p.RenameDropping("/c", "a3", "a2"); err != nil {
		t.Fatal(err)
	}
	if got := p.UsageOf("ssd"); got != 7 {
		t.Fatalf("ssd usage after rename-overwrite = %d, want 7", got)
	}
	if err := p.RemoveDropping("/c", "a2"); err != nil {
		t.Fatal(err)
	}
	if got := p.UsageOf("ssd"); got != 0 {
		t.Fatalf("ssd usage after remove = %d, want 0", got)
	}
	if err := p.RemoveContainer("/c"); err != nil {
		t.Fatal(err)
	}
	u = p.Usage()
	if u["ssd"] != 0 || u["hdd"] != 0 {
		t.Fatalf("usage after container removal = %v, want zeros", u)
	}
}

// TestUsageSeedsFromDisk checks that a fresh FS over existing backends
// learns its counters by walking the mounts once, and that the index
// dropping and temp files are not counted.
func TestUsageSeedsFromDisk(t *testing.T) {
	p, ssd, hdd := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "a", "ssd", make([]byte, 64))
	putDropping(t, p, "/c", "b", "hdd", make([]byte, 32))
	// A stray temp file (torn ReplaceFile) must not count.
	if err := vfs.WriteFile(ssd, "/mnt1/c/x.tmp", make([]byte, 999)); err != nil {
		t.Fatal(err)
	}

	p2, err := New(
		Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	u := p2.Usage()
	if u["ssd"] != 64 || u["hdd"] != 32 {
		t.Fatalf("seeded usage = %v, want ssd:64 hdd:32", u)
	}
}

func TestReplaceDroppingCrossBackend(t *testing.T) {
	p, ssd, _ := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "x", "ssd", []byte("old-old-old"))
	putDropping(t, p, "/c", "staging.x", "hdd", []byte("new"))

	if err := p.ReplaceDropping("/c", "staging.x", "x"); err != nil {
		t.Fatal(err)
	}
	d, err := p.StatDropping("/c", "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "hdd" || d.Size != 3 {
		t.Fatalf("x = %+v, want backend hdd size 3", d)
	}
	f, err := p.OpenDropping("/c", "x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(ssd, "/mnt1/c/x")
	if got != nil {
		t.Fatalf("stale ssd copy survives: %q", got)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, []byte("new")) {
		t.Fatalf("content %q err %v", buf, err)
	}
	f.Close()
	// No staging entry left in the index.
	idx, err := p.Index("/c")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range idx {
		if e.Name == "staging.x" {
			t.Fatal("staging entry survives in index")
		}
	}
	if u := p.Usage(); u["ssd"] != 0 || u["hdd"] != 3 {
		t.Fatalf("usage after replace = %v, want ssd:0 hdd:3", u)
	}
	// Replacing from a missing source fails cleanly.
	if err := p.ReplaceDropping("/c", "nope", "x"); err == nil {
		t.Fatal("replace from missing source succeeded")
	}
}

func TestReplaceDroppingSameBackend(t *testing.T) {
	p, _, _ := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "x", "ssd", []byte("aaaa"))
	putDropping(t, p, "/c", "staging.x", "ssd", []byte("bb"))
	if err := p.ReplaceDropping("/c", "staging.x", "x"); err != nil {
		t.Fatal(err)
	}
	d, err := p.StatDropping("/c", "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "ssd" || d.Size != 2 {
		t.Fatalf("x = %+v, want backend ssd size 2", d)
	}
	if got := p.UsageOf("ssd"); got != 2 {
		t.Fatalf("ssd usage = %d, want 2", got)
	}
}

func TestSweepOrphans(t *testing.T) {
	p, ssd, hdd := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "keep", "ssd", []byte("data"))
	// An unreferenced file on the other backend — the torn half of a
	// crashed migration.
	if err := vfs.WriteFile(hdd, "/mnt2/c/ghost", []byte("zzz")); err != nil {
		t.Fatal(err)
	}
	// A dangling index entry: remove the file behind the store's back.
	putDropping(t, p, "/c", "gone", "ssd", []byte("x"))
	if err := ssd.Remove("/mnt1/c/gone"); err != nil {
		t.Fatal(err)
	}

	removed, err := p.SweepOrphans("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "hdd:ghost" {
		t.Fatalf("removed = %v, want [hdd:ghost]", removed)
	}
	idx, err := p.Index("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0].Name != "keep" {
		t.Fatalf("index = %v, want only keep", idx)
	}
	// The canonical index file itself must never be swept.
	if !vfs.Exists(ssd, "/mnt1/c/"+indexFileName) {
		t.Fatal("sweep removed the container index")
	}
	// Idempotent on a clean container.
	if removed, err := p.SweepOrphans("/c"); err != nil || len(removed) != 0 {
		t.Fatalf("second sweep: %v, %v", removed, err)
	}
}

func TestRenameCrossBackendRejected(t *testing.T) {
	p, ssd, hdd := twoBackends()
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	putDropping(t, p, "/c", "a", "ssd", []byte("aa"))
	putDropping(t, p, "/c", "b", "hdd", []byte("bb"))
	err := p.RenameDropping("/c", "a", "b")
	if !errors.Is(err, ErrCrossBackend) {
		t.Fatalf("err = %v, want ErrCrossBackend", err)
	}
	// Nothing moved: both droppings intact.
	for _, c := range []struct {
		fs   vfs.FS
		path string
		want string
	}{
		{ssd, "/mnt1/c/a", "aa"},
		{hdd, "/mnt2/c/b", "bb"},
	} {
		got, err := vfs.ReadFile(c.fs, c.path)
		if err != nil || string(got) != c.want {
			t.Fatalf("%s = %q, %v; rejected rename must not touch the store", c.path, got, err)
		}
	}
}

// TestCreateDroppingNoSpace checks that a full block-device backend surfaces
// the typed vfs.ErrNoSpace through CreateDropping instead of tearing mid-write.
func TestCreateDroppingNoSpace(t *testing.T) {
	dev := device.Device{
		Name: "tiny", ReadBW: 100 * device.MB, WriteBW: 100 * device.MB,
		SeekSec: 0, Capacity: 2 * blockfs.BlockSize,
	}
	bfs := blockfs.New("tiny", dev, nil)
	p, err := New(Backend{Name: "ssd", FS: bfs, Mount: "/"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateContainer("/c"); err != nil {
		t.Fatal(err)
	}
	// Fill the device completely (the index file occupies part of a block,
	// so one full-capacity dropping write leaves zero free blocks).
	f, err := p.CreateDropping("/c", "fill", "ssd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, bfs.FreeBytes())); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if bfs.FreeBytes() > 0 {
		t.Fatalf("device still has %d free bytes", bfs.FreeBytes())
	}
	_, err = p.CreateDropping("/c", "more", "ssd")
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("err = %v, want vfs.ErrNoSpace", err)
	}
}
