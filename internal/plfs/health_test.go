package plfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// flakyFS delegates to a MemFS until failed is set, then surfaces a
// transport-down error from every op — the shape an rpc client takes once
// its retry budget is spent.
type flakyFS struct {
	*vfs.MemFS
	failed bool
}

func (f *flakyFS) err() error {
	return fmt.Errorf("rpc: stat failed after 4 attempts: %w: connection refused", vfs.ErrBackendDown)
}

func (f *flakyFS) Create(name string) (vfs.File, error) {
	if f.failed {
		return nil, f.err()
	}
	return f.MemFS.Create(name)
}

func (f *flakyFS) Open(name string) (vfs.File, error) {
	if f.failed {
		return nil, f.err()
	}
	return f.MemFS.Open(name)
}

func (f *flakyFS) Stat(name string) (vfs.FileInfo, error) {
	if f.failed {
		return vfs.FileInfo{}, f.err()
	}
	return f.MemFS.Stat(name)
}

func newHealthFixture(t *testing.T) (*FS, *flakyFS, *metrics.Registry) {
	t.Helper()
	good := vfs.NewMemFS()
	flaky := &flakyFS{MemFS: vfs.NewMemFS()}
	p, err := New(
		Backend{Name: "good", FS: good, Mount: "/mnt1"},
		Backend{Name: "flaky", FS: flaky, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	p.SetMetrics(reg)
	if err := p.CreateContainer("/traj"); err != nil {
		t.Fatal(err)
	}
	return p, flaky, reg
}

func TestBackendDownMarking(t *testing.T) {
	p, flaky, reg := newHealthFixture(t)

	f, err := p.CreateDropping("/traj", "subset.p", "flaky")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Kill the backend: the next dispatch to it marks it down...
	flaky.failed = true
	if _, err := p.StatDropping("/traj", "subset.p"); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("stat on dead backend = %v, want ErrBackendDown", err)
	}
	// ...and later dispatches fail fast without touching the transport.
	if _, err := p.CreateDropping("/traj", "more.p", "flaky"); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("create on marked backend = %v, want fail-fast ErrBackendDown", err)
	}
	if _, err := p.OpenDropping("/traj", "subset.p"); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("open on marked backend = %v, want fail-fast ErrBackendDown", err)
	}
	if got := reg.Snapshot().Counters["plfs.backend.flaky.down"]; got != 1 {
		t.Errorf("backend.flaky.down = %d, want 1 (marks are edge-triggered)", got)
	}

	// The healthy backend keeps serving.
	g, err := p.CreateDropping("/traj", "other.p", "good")
	if err != nil {
		t.Fatalf("healthy backend refused work: %v", err)
	}
	g.Close()

	health := p.BackendHealth()
	if health["good"] != nil {
		t.Errorf("good marked down: %v", health["good"])
	}
	if !errors.Is(health["flaky"], vfs.ErrBackendDown) {
		t.Errorf("flaky health = %v, want the transport error", health["flaky"])
	}
}

// TestBackendHealthFlapping drives a backend through repeated
// down → probe-revive → down cycles, the pattern of a storage node that
// keeps rebooting. Each cycle must cost exactly one down-mark transition
// on plfs.backend.<name>.down, every revival must clear the fail-fast
// marker so dispatch really reaches the transport again, and probes while
// already down must not double-count.
func TestBackendHealthFlapping(t *testing.T) {
	p, flaky, reg := newHealthFixture(t)
	f, err := p.CreateDropping("/traj", "subset.p", "flaky")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	const cycles = 5
	for i := 1; i <= cycles; i++ {
		// Down: the first dispatch marks, later ones fail fast.
		flaky.failed = true
		if _, err := p.StatDropping("/traj", "subset.p"); !errors.Is(err, vfs.ErrBackendDown) {
			t.Fatalf("cycle %d: stat on dead backend = %v", i, err)
		}
		if _, err := p.OpenDropping("/traj", "subset.p"); !errors.Is(err, vfs.ErrBackendDown) {
			t.Fatalf("cycle %d: fail-fast dispatch = %v", i, err)
		}
		// Extra probes of a backend that is still dead re-observe the
		// down state without minting a second transition.
		if err := p.Probe("flaky"); !errors.Is(err, vfs.ErrBackendDown) {
			t.Fatalf("cycle %d: probe of dead backend = %v", i, err)
		}
		if got := reg.Snapshot().Counters["plfs.backend.flaky.down"]; got != int64(i) {
			t.Fatalf("cycle %d: down counter = %d, want %d (one per transition)", i, got, i)
		}

		// Revive: the probe clears the marker and dispatch must reach the
		// transport again — a stale fail-fast marker would error here
		// without ever touching the (now healthy) store.
		flaky.failed = false
		if err := p.Probe("flaky"); err != nil {
			t.Fatalf("cycle %d: probe of revived backend: %v", i, err)
		}
		if p.BackendHealth()["flaky"] != nil {
			t.Fatalf("cycle %d: stale down mark survived the probe", i)
		}
		if _, err := p.StatDropping("/traj", "subset.p"); err != nil {
			t.Fatalf("cycle %d: dispatch after revival: %v", i, err)
		}
	}
	if got := reg.Snapshot().Counters["plfs.backend.flaky.down"]; got != cycles {
		t.Errorf("down counter = %d after %d flaps, want %d", got, cycles, cycles)
	}
}

func TestProbeAndRevive(t *testing.T) {
	p, flaky, _ := newHealthFixture(t)
	flaky.failed = true
	if err := p.Probe("flaky"); !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("probe of dead backend = %v, want ErrBackendDown", err)
	}
	if p.BackendHealth()["flaky"] == nil {
		t.Fatal("probe did not mark the backend down")
	}

	// Node comes back: a probe re-admits it.
	flaky.failed = false
	if err := p.Probe("flaky"); err != nil {
		t.Fatalf("probe of revived backend: %v", err)
	}
	if p.BackendHealth()["flaky"] != nil {
		t.Error("successful probe left the down mark in place")
	}

	// Manual revive works too.
	flaky.failed = true
	p.Probe("flaky")
	if err := p.ReviveBackend("flaky"); err != nil {
		t.Fatal(err)
	}
	if p.BackendHealth()["flaky"] != nil {
		t.Error("ReviveBackend left the down mark in place")
	}
	if err := p.ReviveBackend("nope"); err == nil {
		t.Error("ReviveBackend accepted an unknown backend")
	}
}
