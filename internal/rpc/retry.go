package rpc

import (
	"time"
)

// RetryPolicy bounds how a dialed client responds to transport failure:
// every attempt runs under a connection deadline, failed attempts redial
// and retry with exponential backoff and full jitter on the top half, and
// both the attempt count and the total backoff slept per call are capped.
//
// Retries are idempotency-aware. An op is re-sent only when that is
// provably safe: either the request frame never fully left this process
// (the send errored, so the server cannot have parsed it), or the op is
// idempotent, so a second application is harmless. A non-idempotent op
// (create/write/close/remove) whose reply was lost after a complete send
// is NOT retried — the server may have applied it — and the call fails
// with the transport error; such decisions are counted under
// rpc.client.retries_suppressed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, including the
	// first. Values below 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it up to MaxBackoff. Zero disables backoff sleeps.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep.
	MaxBackoff time.Duration
	// BackoffBudget caps the total time a single call may spend sleeping
	// between retries; once exceeded the call fails. Zero means no cap.
	BackoffBudget time.Duration
	// CallTimeout is the per-attempt deadline set on the connection before
	// each send (SetDeadline), so a stalled node surfaces as a timeout
	// instead of a hang. Zero disables the deadline.
	CallTimeout time.Duration
}

// DefaultRetryPolicy returns the production defaults: 4 attempts, 5 ms
// base backoff doubling to 250 ms, 2 s of total backoff per call, and a
// 30 s per-attempt deadline.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		BaseBackoff:   5 * time.Millisecond,
		MaxBackoff:    250 * time.Millisecond,
		BackoffBudget: 2 * time.Second,
		CallTimeout:   30 * time.Second,
	}
}

// idempotentOp reports whether an opcode may be safely re-sent when its
// reply was lost: the server could have applied the first send already.
//
//   - open/read/stat/readdir/size: pure reads (a retried open can leak one
//     server handle, which is benign — the handle table is per-process).
//   - mkdirall: converges to the same state on re-application.
//   - ident: declares the connection's tenant; re-declaring is a no-op.
//   - tableget/tableput: the get is a pure read; the put replaces the
//     whole table at an explicit version, so re-applying it converges
//     (and a stale version is rejected either way).
//   - watch: a pure read; re-polling with the same CRC is the normal
//     pattern even without failures.
//   - create/write/close/remove/rename: a second application truncates
//     data, appends bytes twice, or fails on the now-missing
//     handle/file/source path.
func idempotentOp(op uint32) bool {
	switch op {
	case opOpen, opRead, opStat, opReadDir, opSize, opMkdirAll, opIdent,
		opTableGet, opTablePut, opWatch:
		return true
	}
	return false
}

// backoffDelay computes the sleep before retry number `retry` (1-based):
// exponential growth capped at MaxBackoff, with full jitter on the top
// half so synchronized clients desynchronize while keeping a floor.
// Callers hold c.mu (the rng is mu-guarded).
func (c *Client) backoffDelay(retry int) time.Duration {
	pol := c.policy
	d := pol.BaseBackoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if pol.MaxBackoff > 0 && d >= pol.MaxBackoff {
			d = pol.MaxBackoff
			break
		}
	}
	if pol.MaxBackoff > 0 && d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}
