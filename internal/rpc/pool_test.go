package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// startPoolNode serves a MemFS on loopback and returns its address plus
// the server's private metrics registry.
func startPoolNode(t *testing.T, store vfs.FS) (string, *metrics.Registry, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, nil)
	reg := metrics.NewRegistry()
	srv.SetMetrics(reg)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return ln.Addr().String(), reg, srv
}

func TestPoolRoundTripAndFanOut(t *testing.T) {
	store := vfs.NewMemFS()
	addr, reg, _ := startPoolNode(t, store)
	pool := NewPool(addr, 4, nil, DefaultRetryPolicy())
	defer pool.Close()

	// Files stay usable regardless of which member serves later calls:
	// the handle table is per-process on the node.
	if err := pool.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	want := []byte("pooled payload")
	f, err := pool.Create("/d/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Concurrent readers spread across the members instead of convoying
	// on one connection.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := pool.Open("/d/file")
			if err != nil {
				errs <- err
				return
			}
			defer g.Close()
			got := make([]byte, len(want))
			if _, err := g.ReadAt(got, 0); err != nil && err.Error() != "EOF" {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("read %q, want %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if conns := reg.Counter("rpc.server.connections").Value(); conns != 4 {
		t.Fatalf("server saw %d connections, want all 4 pool members", conns)
	}
}

func TestPoolLazyDialToDownNode(t *testing.T) {
	// Reserve an address nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Construction must not block or fail: the node being down surfaces
	// per call, wrapping vfs.ErrBackendDown.
	pool := NewPool(addr, 2, nil, RetryPolicy{MaxAttempts: 2, CallTimeout: 500 * time.Millisecond})
	defer pool.Close()
	start := time.Now()
	_, err = pool.Stat("/x")
	if !errors.Is(err, vfs.ErrBackendDown) {
		t.Fatalf("Stat on down node = %v, want ErrBackendDown", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("down-node failure took %v, want fast connection-refused", d)
	}
}

func TestClusterTableEndpoint(t *testing.T) {
	addr, _, srv := startPoolNode(t, vfs.NewMemFS())
	pool := NewPool(addr, 2, nil, DefaultRetryPolicy())
	defer pool.Close()

	// A node starts with no table.
	data, version, err := pool.FetchClusterTable()
	if err != nil || data != nil || version != 0 {
		t.Fatalf("empty fetch = (%q, %d, %v)", data, version, err)
	}

	table2 := []byte(`{"version":2}`)
	if err := pool.PushClusterTable(table2, 2); err != nil {
		t.Fatal(err)
	}
	data, version, err = pool.FetchClusterTable()
	if err != nil || version != 2 || !bytes.Equal(data, table2) {
		t.Fatalf("fetch after push = (%q, %d, %v)", data, version, err)
	}

	// Same-version re-put is idempotent (retry-safe); an older version is
	// rejected so a lagging controller cannot roll the layout back.
	if err := pool.PushClusterTable(table2, 2); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	err = pool.PushClusterTable([]byte(`{"version":1}`), 1)
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale put = %v, want stale-version rejection", err)
	}
	if _, v := srv.ClusterTable(); v != 2 {
		t.Fatalf("node table version = %d after stale put, want 2", v)
	}
}
