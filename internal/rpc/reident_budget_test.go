package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/vfs"
)

// TestReidentDoesNotConsumeBackoffBudget pins the interaction of the
// redial-time tenant re-ident with a nearly exhausted backoff budget: the
// ident round-trip happens on the wire, under the call deadline, but its
// wall-clock time must NOT be debited from the interrupted call's
// BackoffBudget — the budget caps backoff sleeps, nothing else. A
// regression that charged ident time against the budget would fail the
// retried call here, because the injected ident leg alone (50 ms) costs
// several times the whole budget (8 ms).
func TestReidentDoesNotConsumeBackoffBudget(t *testing.T) {
	// Op sequence after arming: stat send (conn.write #1), reply read
	// (conn.read #1) -> drop tears the conn; the retry redials, and the
	// first frame on the fresh conn is the re-ident (conn.write #2),
	// which the slow rule stalls for far longer than the backoff budget.
	in := faultfs.MustNew(1,
		faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.read", Nth: 1},
		faultfs.Rule{Kind: faultfs.KindSlow, Op: "conn.write", Nth: 2, Delay: 50 * time.Millisecond},
	)
	in.SetEnabled(false)
	pol := RetryPolicy{
		MaxAttempts:   3,
		BaseBackoff:   4 * time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		BackoffBudget: 8 * time.Millisecond,
		CallTimeout:   2 * time.Second,
	}
	store := vfs.NewMemFS()
	if err := vfs.WriteFile(store, "/probe", []byte("x")); err != nil {
		t.Fatal(err)
	}
	addr, reg, _ := startPoolNode(t, store)
	c, err := DialWith(addr, faultDialer(in), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	creg := metrics.NewRegistry()
	c.SetMetrics(creg)
	if err := c.SetTenant("acme"); err != nil {
		t.Fatal(err)
	}

	in.SetEnabled(true)
	start := time.Now()
	if _, err := c.Stat("/probe"); err != nil {
		t.Fatalf("retried stat failed: %v (ident time charged against backoff budget?)", err)
	}
	elapsed := time.Since(start)
	in.SetEnabled(false)

	// The slow ident leg really ran inside the retry: the call took at
	// least its 50 ms, and the node dispatched a second ident.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("call returned in %v; the injected ident stall never happened", elapsed)
	}
	if n := creg.Counter("rpc.client.retries").Value(); n < 1 {
		t.Fatalf("retries = %d, want at least 1", n)
	}
	if n := reg.Counter("rpc.server.op.ident").Value(); n != 2 {
		t.Fatalf("server ident dispatches = %d, want 2 (initial + redial re-ident)", n)
	}
}

// TestBackoffBudgetStillBinds is the guard that keeps the test above
// honest: with the same drop fault but a budget smaller than any single
// backoff sleep, the retry is refused up front and the call fails wrapping
// vfs.ErrBackendDown — the budget is enforced, just against sleeps only.
func TestBackoffBudgetStillBinds(t *testing.T) {
	in := faultfs.MustNew(1,
		faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.read", Nth: 1},
	)
	in.SetEnabled(false)
	pol := RetryPolicy{
		MaxAttempts:   3,
		BaseBackoff:   4 * time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		BackoffBudget: time.Nanosecond,
		CallTimeout:   2 * time.Second,
	}
	store := vfs.NewMemFS()
	if err := vfs.WriteFile(store, "/probe", []byte("x")); err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startPoolNode(t, store)
	c, err := DialWith(addr, faultDialer(in), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in.SetEnabled(true)
	_, err = c.Stat("/probe")
	in.SetEnabled(false)
	if !errors.Is(err, vfs.ErrBackendDown) || !strings.Contains(err.Error(), "backoff budget") {
		t.Fatalf("stat err = %v, want backoff-budget exhaustion wrapping ErrBackendDown", err)
	}
}
