package rpc

import (
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// startMeteredNode serves fsys on a loopback listener, closing the first accepted
// connection immediately when flakyFirst is set (to exercise the client's
// redial retry).
func startMeteredNode(t *testing.T, fsys vfs.FS, reg *metrics.Registry, flakyFirst bool) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fsys, nil)
	srv.SetMetrics(reg)
	var dropped atomic.Bool
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if flakyFirst && dropped.CompareAndSwap(false, true) {
				conn.Close()
				continue
			}
			go srv.handleConn(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestClientServerMetrics(t *testing.T) {
	sreg := metrics.NewRegistry()
	creg := metrics.NewRegistry()
	addr, stop := startMeteredNode(t, vfs.NewMemFS(), sreg, false)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(creg)

	if err := vfs.WriteFile(c, "/d/f.bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if data, err := vfs.ReadFile(c, "/d/f.bin"); err != nil || string(data) != "payload" {
		t.Fatalf("read back = %q, %v", data, err)
	}
	if _, err := c.Open("/missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}

	cs := creg.Snapshot()
	if cs.Counters["rpc.client.requests"] == 0 {
		t.Error("no client requests counted")
	}
	if cs.Counters["rpc.client.responses"] != cs.Counters["rpc.client.requests"] {
		t.Errorf("responses %d != requests %d (transport was healthy)",
			cs.Counters["rpc.client.responses"], cs.Counters["rpc.client.requests"])
	}
	if cs.Counters["rpc.client.errors"] != 1 {
		t.Errorf("client errors = %d, want 1", cs.Counters["rpc.client.errors"])
	}
	if cs.Counters["rpc.client.retries"] != 0 {
		t.Errorf("client retries = %d, want 0", cs.Counters["rpc.client.retries"])
	}
	if cs.Counters["rpc.client.bytes_sent"] == 0 || cs.Counters["rpc.client.bytes_received"] == 0 {
		t.Error("client byte counters empty")
	}
	if cs.Histograms["rpc.client.call.ns"].Count == 0 {
		t.Error("client latency histogram empty")
	}

	ss := sreg.Snapshot()
	if ss.Counters["rpc.server.requests"] != cs.Counters["rpc.client.requests"] {
		t.Errorf("server requests %d != client requests %d",
			ss.Counters["rpc.server.requests"], cs.Counters["rpc.client.requests"])
	}
	if ss.Counters["rpc.server.op.create"] == 0 || ss.Counters["rpc.server.op.write"] == 0 ||
		ss.Counters["rpc.server.op.read"] == 0 {
		t.Errorf("per-op counters missing: %+v", ss.Counters)
	}
	if ss.Counters["rpc.server.errors"] != 1 {
		t.Errorf("server errors = %d, want 1", ss.Counters["rpc.server.errors"])
	}
	if ss.Counters["rpc.server.connections"] != 1 {
		t.Errorf("server connections = %d, want 1", ss.Counters["rpc.server.connections"])
	}
}

// TestClientRetry drops the client's first connection at the server and
// verifies the dialed client transparently redials, retries, and counts it.
func TestClientRetry(t *testing.T) {
	creg := metrics.NewRegistry()
	addr, stop := startMeteredNode(t, vfs.NewMemFS(), metrics.NewRegistry(), true)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(creg)

	// First call rides the connection the server already dropped; the
	// client must redial and succeed.
	if err := c.MkdirAll("/survives"); err != nil {
		t.Fatalf("call after dropped connection: %v", err)
	}
	if ok := vfs.Exists(c, "/survives"); !ok {
		t.Error("directory missing after retried call")
	}
	cs := creg.Snapshot()
	if cs.Counters["rpc.client.retries"] != 1 {
		t.Errorf("retries = %d, want 1", cs.Counters["rpc.client.retries"])
	}
	if cs.Counters["rpc.client.errors"] != 0 {
		t.Errorf("errors = %d, want 0 (retry hid the transport blip)", cs.Counters["rpc.client.errors"])
	}
}

// TestPipeClientNoRetry: a client over an existing connection (NewClient)
// must fail fast rather than redial.
func TestPipeClientNoRetry(t *testing.T) {
	creg := metrics.NewRegistry()
	cliConn, srvConn := net.Pipe()
	srvConn.Close()
	c := NewClient(cliConn)
	c.SetMetrics(creg)
	if err := c.MkdirAll("/x"); err == nil {
		t.Fatal("call over closed pipe succeeded")
	}
	cs := creg.Snapshot()
	if cs.Counters["rpc.client.retries"] != 0 {
		t.Errorf("pipe client retried %d times", cs.Counters["rpc.client.retries"])
	}
	if cs.Counters["rpc.client.errors"] != 1 {
		t.Errorf("errors = %d, want 1", cs.Counters["rpc.client.errors"])
	}
}
