package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ErrServerClosed is returned by Serve after Close: the expected way for
// an accept loop to end, not a failure.
var ErrServerClosed = errors.New("rpc: server closed")

// Server exposes one vfs.FS to remote clients.
//
// Close is graceful: it stops the accept loops, wakes idle connections,
// and waits — via a WaitGroup over the per-connection goroutines — until
// every in-flight request has been dispatched and its response written, so
// shutting a node down never drops a request that was already read off the
// wire.
type Server struct {
	fsys   vfs.FS
	logger *log.Logger
	m      serverMetrics

	mu      sync.Mutex
	nextFD  uint32
	handles map[uint32]vfs.File

	connMu    sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
}

// serverMetrics are the node-side request/response/error handles, plus a
// per-opcode request breakdown.
type serverMetrics struct {
	requests    *metrics.Counter
	responses   *metrics.Counter
	errors      *metrics.Counter
	connections *metrics.Counter
	bytesIn     *metrics.Counter
	bytesOut    *metrics.Counter
	latency     *metrics.Histogram
	perOp       [opRename + 1]*metrics.Counter
}

// opName names an opcode for metrics and logs.
func opName(op uint32) string {
	names := [...]string{
		opCreate: "create", opOpen: "open", opRead: "read", opWrite: "write",
		opClose: "close", opStat: "stat", opReadDir: "readdir",
		opMkdirAll: "mkdirall", opRemove: "remove", opSize: "size",
		opRename: "rename",
	}
	if op < uint32(len(names)) && names[op] != "" {
		return names[op]
	}
	return "unknown"
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	m := serverMetrics{
		requests:    reg.Counter("rpc.server.requests"),
		responses:   reg.Counter("rpc.server.responses"),
		errors:      reg.Counter("rpc.server.errors"),
		connections: reg.Counter("rpc.server.connections"),
		bytesIn:     reg.Counter("rpc.server.bytes_received"),
		bytesOut:    reg.Counter("rpc.server.bytes_sent"),
		latency:     reg.Histogram("rpc.server.dispatch.ns"),
	}
	for op := opCreate; op <= opRename; op++ {
		m.perOp[op] = reg.Counter("rpc.server.op." + opName(op))
	}
	return m
}

// NewServer returns a server over fsys. logger may be nil to disable
// logging.
func NewServer(fsys vfs.FS, logger *log.Logger) *Server {
	return &Server{
		fsys: fsys, logger: logger,
		m:         newServerMetrics(metrics.Default),
		handles:   map[uint32]vfs.File{},
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
}

// SetMetrics points the server's counters at reg (metrics.Default by
// default; nil disables collection). Call before Serve.
func (s *Server) SetMetrics(reg *metrics.Registry) { s.m = newServerMetrics(reg) }

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Serve accepts connections until the listener fails or the server is
// closed; after Close it returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, ln)
		s.connMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing() {
				return ErrServerClosed
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// Close stops every accept loop, wakes idle connections, and blocks until
// all in-flight requests have finished (see the Server doc comment). It is
// idempotent.
func (s *Server) Close() error {
	s.connMu.Lock()
	if !s.closed {
		s.closed = true
		for ln := range s.listeners {
			ln.Close()
		}
		// Kick connections parked in readFrame; handlers mid-dispatch
		// finish and write their response first (writes keep working),
		// then observe the expired read deadline and exit.
		for conn := range s.conns {
			conn.SetReadDeadline(time.Now())
		}
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) closing() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.closed
}

// register tracks a connection for draining; it refuses connections that
// race a Close.
func (s *Server) register(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) unregister(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.wg.Done()
}

func (s *Server) handleConn(conn net.Conn) {
	if !s.register(conn) {
		conn.Close()
		return
	}
	defer s.unregister(conn)
	defer conn.Close()
	s.m.connections.Inc()
	s.logf("rpc: client %s connected", conn.RemoteAddr())
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF is a clean client disconnect; a deadline kick or closed
			// conn during shutdown is the drain path. Neither is news.
			if err != io.EOF && !s.closing() &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("rpc: client %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.m.bytesIn.Add(int64(len(payload)) + 4)
		s.m.requests.Inc()
		if len(payload) >= 4 {
			if op := binary.BigEndian.Uint32(payload); op <= opRename {
				s.m.perOp[op].Inc()
			}
		}
		start := time.Now()
		resp := s.dispatch(payload)
		s.m.latency.Observe(time.Since(start).Nanoseconds())
		// Response status word: 0 = OK, anything else = error reply.
		if len(resp) >= 4 && binary.BigEndian.Uint32(resp) != 0 {
			s.m.errors.Inc()
		}
		if err := writeFrame(conn, resp); err != nil {
			if !s.closing() && !errors.Is(err, net.ErrClosed) {
				s.logf("rpc: client %s write: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.m.bytesOut.Add(int64(len(resp)) + 4)
		s.m.responses.Inc()
		if s.closing() {
			return
		}
	}
}

func (s *Server) dispatch(payload []byte) []byte {
	r := xdr.NewReader(payload)
	op := r.Uint32()
	if err := r.Err(); err != nil {
		return respondErr(err)
	}
	switch op {
	case opCreate, opOpen:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		var f vfs.File
		var err error
		if op == opCreate {
			f, err = s.fsys.Create(name)
		} else {
			f, err = s.fsys.Open(name)
		}
		if err != nil {
			return respondErr(err)
		}
		s.mu.Lock()
		s.nextFD++
		fd := s.nextFD
		s.handles[fd] = f
		s.mu.Unlock()
		w := respondOK()
		w.Uint32(fd)
		w.Int64(f.Size())
		return w.Bytes()

	case opRead:
		fd := r.Uint32()
		off := r.Int64()
		n := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if n > MaxPayload/2 {
			return respondErr(fmt.Errorf("rpc: read of %d bytes too large", n))
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		buf := make([]byte, n)
		got, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(boolWord(err == io.EOF))
		w.VarOpaque(buf[:got])
		return w.Bytes()

	case opWrite:
		fd := r.Uint32()
		data := r.VarOpaque()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		n, err := f.Write(data)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(uint32(n))
		return w.Bytes()

	case opClose:
		fd := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		s.mu.Lock()
		f, ok := s.handles[fd]
		delete(s.handles, fd)
		s.mu.Unlock()
		if !ok {
			return respondErr(fmt.Errorf("rpc: unknown handle %d", fd))
		}
		if err := f.Close(); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opSize:
		fd := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Int64(f.Size())
		return w.Bytes()

	case opStat:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		info, err := s.fsys.Stat(name)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		appendInfo(w, info)
		return w.Bytes()

	case opReadDir:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		entries, err := s.fsys.ReadDir(name)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(uint32(len(entries)))
		for _, e := range entries {
			appendInfo(w, e)
		}
		return w.Bytes()

	case opMkdirAll:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.MkdirAll(name); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opRemove:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.Remove(name); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opRename:
		oldname := r.String()
		newname := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.Rename(oldname, newname); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	default:
		return respondErr(fmt.Errorf("%w: unknown opcode %d", ErrProtocol, op))
	}
}

func (s *Server) handle(fd uint32) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.handles[fd]
	if !ok {
		return nil, fmt.Errorf("rpc: unknown handle %d", fd)
	}
	return f, nil
}

func appendInfo(w *xdr.Writer, info vfs.FileInfo) {
	w.String(info.Name)
	w.Int64(info.Size)
	w.Uint32(boolWord(info.IsDir))
}

func decodeInfo(r *xdr.Reader) vfs.FileInfo {
	return vfs.FileInfo{
		Name:  r.String(),
		Size:  r.Int64(),
		IsDir: r.Uint32() != 0,
	}
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
