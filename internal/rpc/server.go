package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ErrServerClosed is returned by Serve after Close: the expected way for
// an accept loop to end, not a failure.
var ErrServerClosed = errors.New("rpc: server closed")

// Server exposes one vfs.FS to remote clients.
//
// Close is graceful: it stops the accept loops, wakes idle connections,
// and waits — via a WaitGroup over the per-connection goroutines — until
// every in-flight request has been dispatched and its response written, so
// shutting a node down never drops a request that was already read off the
// wire.
type Server struct {
	fsys   vfs.FS
	logger *log.Logger
	m      serverMetrics

	mu      sync.Mutex
	nextFD  uint32
	handles map[uint32]vfs.File

	quotaMu    sync.Mutex
	quotaRate  float64 // read bytes/second per tenant (0 = unmetered)
	quotaBurst float64
	quotas     map[string]*tenantState

	connMu    sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup

	tableMu      sync.Mutex
	tableData    []byte // opaque cluster placement table (internal/placement JSON)
	tableVersion uint64

	watchPoll time.Duration // opWatch re-read cadence (0 = defaultWatchPoll)
}

// Watch-op bounds: the server re-reads the watched file every watchPoll
// while a long-poll is parked, and caps any single poll at maxWatchTimeout
// so a stuck client cannot pin a connection goroutine forever.
const (
	defaultWatchPoll = 2 * time.Millisecond
	maxWatchTimeout  = 60 * time.Second
)

// serverMetrics are the node-side request/response/error handles, plus a
// per-opcode request breakdown.
type serverMetrics struct {
	reg         *metrics.Registry // for per-tenant counters minted at ident time
	requests    *metrics.Counter
	responses   *metrics.Counter
	errors      *metrics.Counter
	connections *metrics.Counter
	bytesIn     *metrics.Counter
	bytesOut    *metrics.Counter
	latency     *metrics.Histogram
	throttleNS  *metrics.Histogram
	perOp       [opWatch + 1]*metrics.Counter
}

// opName names an opcode for metrics and logs.
func opName(op uint32) string {
	names := [...]string{
		opCreate: "create", opOpen: "open", opRead: "read", opWrite: "write",
		opClose: "close", opStat: "stat", opReadDir: "readdir",
		opMkdirAll: "mkdirall", opRemove: "remove", opSize: "size",
		opRename: "rename", opIdent: "ident",
		opTableGet: "tableget", opTablePut: "tableput",
		opWatch: "watch",
	}
	if op < uint32(len(names)) && names[op] != "" {
		return names[op]
	}
	return "unknown"
}

func newServerMetrics(reg *metrics.Registry) serverMetrics {
	m := serverMetrics{
		reg:         reg,
		requests:    reg.Counter("rpc.server.requests"),
		responses:   reg.Counter("rpc.server.responses"),
		errors:      reg.Counter("rpc.server.errors"),
		connections: reg.Counter("rpc.server.connections"),
		bytesIn:     reg.Counter("rpc.server.bytes_received"),
		bytesOut:    reg.Counter("rpc.server.bytes_sent"),
		latency:     reg.Histogram("rpc.server.dispatch.ns"),
		throttleNS:  reg.Histogram("rpc.server.throttle.ns"),
	}
	for op := opCreate; op <= opWatch; op++ {
		m.perOp[op] = reg.Counter("rpc.server.op." + opName(op))
	}
	return m
}

// NewServer returns a server over fsys. logger may be nil to disable
// logging.
func NewServer(fsys vfs.FS, logger *log.Logger) *Server {
	return &Server{
		fsys: fsys, logger: logger,
		m:         newServerMetrics(metrics.Default),
		handles:   map[uint32]vfs.File{},
		quotas:    map[string]*tenantState{},
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
}

// SetMetrics points the server's counters at reg (metrics.Default by
// default; nil disables collection). Call before Serve.
func (s *Server) SetMetrics(reg *metrics.Registry) { s.m = newServerMetrics(reg) }

// SetWatchPoll sets how often a parked opWatch re-reads the watched file
// (defaultWatchPoll when zero). Call before Serve.
func (s *Server) SetWatchPoll(d time.Duration) { s.watchPoll = d }

// SetTenantQuota rate-limits read bytes per identified tenant (opIdent) to
// rate bytes/second with the given burst capacity. Zero rate disables
// metering; unidentified connections are never metered. Call before Serve.
//
// The throttle is a token bucket per tenant shared across that tenant's
// connections: an over-quota read sleeps the serving goroutine until the
// bucket refills, pushing backpressure onto exactly the tenant that
// overspent while other connections keep being served. Sleeps land in the
// rpc.server.throttle.ns histogram.
func (s *Server) SetTenantQuota(rate, burst float64) {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	s.quotaRate = rate
	s.quotaBurst = burst
	s.quotas = map[string]*tenantState{}
}

// tenantState is the server-wide accounting for one tenant: read counters
// (minted once, shared by every connection the tenant identifies on) and
// its quota bucket.
type tenantState struct {
	reads  *metrics.Counter
	bytes  *metrics.Counter
	tokens float64
	last   time.Time
}

// tenant returns (creating on first ident) the shared state for name.
func (s *Server) tenant(name string) *tenantState {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	ts, ok := s.quotas[name]
	if !ok {
		ts = &tenantState{
			reads: s.m.reg.Counter("rpc.tenant." + name + ".reads"),
			bytes: s.m.reg.Counter("rpc.tenant." + name + ".read_bytes"),
		}
		ts.tokens = s.quotaBurst
		s.quotas[name] = ts
	}
	return ts
}

// chargeRead debits n read bytes from ts's bucket and returns how long the
// caller must sleep to respect the tenant's rate. Debt is allowed (the read
// already happened); the sleep amortizes it before the next one.
func (s *Server) chargeRead(ts *tenantState, n int64) time.Duration {
	s.quotaMu.Lock()
	defer s.quotaMu.Unlock()
	ts.reads.Inc()
	ts.bytes.Add(n)
	if s.quotaRate <= 0 {
		return 0
	}
	now := time.Now()
	if !ts.last.IsZero() {
		ts.tokens += now.Sub(ts.last).Seconds() * s.quotaRate
		if ts.tokens > s.quotaBurst {
			ts.tokens = s.quotaBurst
		}
	}
	ts.last = now
	ts.tokens -= float64(n)
	if ts.tokens >= 0 {
		return 0
	}
	return time.Duration(-ts.tokens / s.quotaRate * float64(time.Second))
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Serve accepts connections until the listener fails or the server is
// closed; after Close it returns ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, ln)
		s.connMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing() {
				return ErrServerClosed
			}
			return err
		}
		go s.handleConn(conn)
	}
}

// Close stops every accept loop, wakes idle connections, and blocks until
// all in-flight requests have finished (see the Server doc comment). It is
// idempotent.
func (s *Server) Close() error {
	s.connMu.Lock()
	if !s.closed {
		s.closed = true
		for ln := range s.listeners {
			ln.Close()
		}
		// Kick connections parked in readFrame; handlers mid-dispatch
		// finish and write their response first (writes keep working),
		// then observe the expired read deadline and exit.
		for conn := range s.conns {
			conn.SetReadDeadline(time.Now())
		}
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) closing() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.closed
}

// register tracks a connection for draining; it refuses connections that
// race a Close.
func (s *Server) register(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) unregister(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.wg.Done()
}

func (s *Server) handleConn(conn net.Conn) {
	if !s.register(conn) {
		conn.Close()
		return
	}
	defer s.unregister(conn)
	defer conn.Close()
	s.m.connections.Inc()
	s.logf("rpc: client %s connected", conn.RemoteAddr())
	// cs carries per-connection state across dispatches: the tenant the
	// connection identified as (opIdent), if any.
	cs := &connState{}
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF is a clean client disconnect; a deadline kick or closed
			// conn during shutdown is the drain path. Neither is news.
			if err != io.EOF && !s.closing() &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.logf("rpc: client %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.m.bytesIn.Add(int64(len(payload)) + 4)
		s.m.requests.Inc()
		if len(payload) >= 4 {
			if op := binary.BigEndian.Uint32(payload); op <= opWatch {
				s.m.perOp[op].Inc()
			}
		}
		start := time.Now()
		resp := s.dispatch(cs, payload)
		s.m.latency.Observe(time.Since(start).Nanoseconds())
		// Response status word: 0 = OK, anything else = error reply.
		if len(resp) >= 4 && binary.BigEndian.Uint32(resp) != 0 {
			s.m.errors.Inc()
		}
		if err := writeFrame(conn, resp); err != nil {
			if !s.closing() && !errors.Is(err, net.ErrClosed) {
				s.logf("rpc: client %s write: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.m.bytesOut.Add(int64(len(resp)) + 4)
		s.m.responses.Inc()
		if s.closing() {
			return
		}
	}
}

// connState is the per-connection dispatch context. A connection starts
// anonymous; an opIdent binds it to a tenant, and every later read on it is
// accounted (and, under SetTenantQuota, throttled) against that tenant.
type connState struct {
	tenant string
	ts     *tenantState
}

func (s *Server) dispatch(cs *connState, payload []byte) []byte {
	r := xdr.NewReader(payload)
	op := r.Uint32()
	if err := r.Err(); err != nil {
		return respondErr(err)
	}
	switch op {
	case opCreate, opOpen:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		var f vfs.File
		var err error
		if op == opCreate {
			f, err = s.fsys.Create(name)
		} else {
			f, err = s.fsys.Open(name)
		}
		if err != nil {
			return respondErr(err)
		}
		s.mu.Lock()
		s.nextFD++
		fd := s.nextFD
		s.handles[fd] = f
		s.mu.Unlock()
		w := respondOK()
		w.Uint32(fd)
		w.Int64(f.Size())
		return w.Bytes()

	case opRead:
		fd := r.Uint32()
		off := r.Int64()
		n := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if n > MaxPayload/2 {
			return respondErr(fmt.Errorf("rpc: read of %d bytes too large", n))
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		buf := make([]byte, n)
		got, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return respondErr(err)
		}
		if cs.ts != nil {
			if d := s.chargeRead(cs.ts, int64(got)); d > 0 {
				s.m.throttleNS.Observe(int64(d))
				time.Sleep(d)
			}
		}
		w := respondOK()
		w.Uint32(boolWord(err == io.EOF))
		w.VarOpaque(buf[:got])
		return w.Bytes()

	case opWrite:
		fd := r.Uint32()
		data := r.VarOpaque()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		n, err := f.Write(data)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(uint32(n))
		return w.Bytes()

	case opClose:
		fd := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		s.mu.Lock()
		f, ok := s.handles[fd]
		delete(s.handles, fd)
		s.mu.Unlock()
		if !ok {
			return respondErr(fmt.Errorf("rpc: unknown handle %d", fd))
		}
		if err := f.Close(); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opSize:
		fd := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		f, err := s.handle(fd)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Int64(f.Size())
		return w.Bytes()

	case opStat:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		info, err := s.fsys.Stat(name)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		appendInfo(w, info)
		return w.Bytes()

	case opReadDir:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		entries, err := s.fsys.ReadDir(name)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(uint32(len(entries)))
		for _, e := range entries {
			appendInfo(w, e)
		}
		return w.Bytes()

	case opMkdirAll:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.MkdirAll(name); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opRemove:
		name := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.Remove(name); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opIdent:
		tenant := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if tenant == "" {
			return respondErr(fmt.Errorf("%w: empty tenant name", ErrProtocol))
		}
		cs.tenant = tenant
		cs.ts = s.tenant(tenant)
		return respondOK().Bytes()

	case opTableGet:
		data, version := s.ClusterTable()
		w := respondOK()
		w.Uint64(version)
		w.VarOpaque(data)
		return w.Bytes()

	case opTablePut:
		version := r.Uint64()
		data := r.VarOpaque()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.SetClusterTable(data, version); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opRename:
		oldname := r.String()
		newname := r.String()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		if err := s.fsys.Rename(oldname, newname); err != nil {
			return respondErr(err)
		}
		return respondOK().Bytes()

	case opWatch:
		name := r.String()
		lastCRC := r.Uint32()
		timeoutMs := r.Uint32()
		if err := r.Err(); err != nil {
			return respondErr(err)
		}
		data, crc, changed, err := s.watch(name, lastCRC, time.Duration(timeoutMs)*time.Millisecond)
		if err != nil {
			return respondErr(err)
		}
		w := respondOK()
		w.Uint32(boolWord(changed))
		w.Uint32(crc)
		w.VarOpaque(data)
		return w.Bytes()

	default:
		return respondErr(fmt.Errorf("%w: unknown opcode %d", ErrProtocol, op))
	}
}

// SetClusterTable installs a cluster placement table on the node's
// metadata endpoint (opTableGet/opTablePut). The bytes are opaque to the
// server — validation belongs to internal/placement — but versions are
// not: a put older than the installed table is rejected so a lagging
// controller cannot roll the cluster's layout back, while re-putting the
// current version is an idempotent no-op (safe under client retry).
func (s *Server) SetClusterTable(data []byte, version uint64) error {
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if version < s.tableVersion {
		return fmt.Errorf("rpc: stale cluster table version %d (node has %d)", version, s.tableVersion)
	}
	s.tableData = append([]byte(nil), data...)
	s.tableVersion = version
	return nil
}

// ClusterTable returns the installed placement table and its version
// (nil, 0 when the node has none).
func (s *Server) ClusterTable() ([]byte, uint64) {
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if s.tableData == nil {
		return nil, s.tableVersion
	}
	return append([]byte(nil), s.tableData...), s.tableVersion
}

// watchCRCTable is CRC32C (Castagnoli) — the same polynomial plfs and xtc
// use, so the CRCs a live reader carries are valid on either side of the
// wire.
var watchCRCTable = crc32.MakeTable(crc32.Castagnoli)

// watch long-polls name server-side: it re-reads the file every watchPoll
// until its CRC32C differs from lastCRC or the timeout elapses. A missing
// file reads as empty with CRC 0, so creation, replacement, and removal all
// count as changes. This is the wire half of plfs.WatchDropping — clients
// forward the whole poll in one opWatch call instead of re-reading the file
// over the network every few milliseconds.
func (s *Server) watch(name string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error) {
	if timeout < 0 {
		timeout = 0
	}
	if timeout > maxWatchTimeout {
		timeout = maxWatchTimeout
	}
	poll := s.watchPoll
	if poll <= 0 {
		poll = defaultWatchPoll
	}
	deadline := time.Now().Add(timeout)
	for {
		data, err := vfs.ReadFile(s.fsys, name)
		if err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return nil, 0, false, err
		}
		crc := uint32(0)
		if err == nil {
			crc = crc32.Checksum(data, watchCRCTable)
		} else {
			data = nil
		}
		if crc != lastCRC {
			return data, crc, true, nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 || s.closing() {
			return nil, lastCRC, false, nil
		}
		if remaining < poll {
			time.Sleep(remaining)
		} else {
			time.Sleep(poll)
		}
	}
}

func (s *Server) handle(fd uint32) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.handles[fd]
	if !ok {
		return nil, fmt.Errorf("rpc: unknown handle %d", fd)
	}
	return f, nil
}

func appendInfo(w *xdr.Writer, info vfs.FileInfo) {
	w.String(info.Name)
	w.Int64(info.Size)
	w.Uint32(boolWord(info.IsDir))
}

func decodeInfo(r *xdr.Reader) vfs.FileInfo {
	return vfs.FileInfo{
		Name:  r.String(),
		Size:  r.Int64(),
		IsDir: r.Uint32() != 0,
	}
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
