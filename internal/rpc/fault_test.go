package rpc

import (
	"bytes"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// faultPolicy is the fast retry schedule used by the fault tests: real
// backoff shape, millisecond scale.
func faultPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		BackoffBudget: time.Second,
		CallTimeout:   150 * time.Millisecond,
	}
}

// faultDialer wraps every dialed connection in the injector.
func faultDialer(in *faultfs.Injector) Dialer {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultfs.WrapConn(conn, in), nil
	}
}

// startFaultNode serves store on a loopback listener and dials it through
// the (initially disarmed) injector.
func startFaultNode(t *testing.T, store vfs.FS, in *faultfs.Injector, pol RetryPolicy) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, nil)
	srv.SetMetrics(metrics.NewRegistry())
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	c, err := DialWith(ln.Addr().String(), faultDialer(in), pol)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFaultMatrix drives every rpc op through each fault mode and asserts
// the retry policy's contract:
//
//   - A fault before the request frame fully left the client (dropped or
//     torn send) is retryable for EVERY op — the server provably never
//     parsed the request — so the call succeeds with retries counted.
//   - A fault after a complete send (dropped reply, reply slower than the
//     call deadline) is retried only for idempotent ops; non-idempotent
//     ops fail with the retry suppressed and counted.
func TestFaultMatrix(t *testing.T) {
	faults := []struct {
		name      string
		rule      faultfs.Rule
		counter   string // faultfs metric the firing must land in
		afterSend bool   // fault hits the reply, not the request
	}{
		{"drop-before-send",
			faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.write", Nth: 1},
			"faultfs.injected.drops", false},
		{"partial-frame",
			faultfs.Rule{Kind: faultfs.KindPartial, Op: "conn.write", Nth: 1},
			"faultfs.injected.partials", false},
		{"drop-after-send",
			faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.read", Nth: 1},
			"faultfs.injected.drops", true},
		{"slow-read-past-deadline",
			faultfs.Rule{Kind: faultfs.KindSlow, Op: "conn.read", Nth: 1, Delay: 400 * time.Millisecond},
			"faultfs.injected.slow", true},
	}

	ops := []struct {
		name       string
		idempotent bool
		// setup runs with the injector disarmed and returns the faulted op.
		setup func(t *testing.T, c *Client) func() error
	}{
		{"mkdirall", true, func(t *testing.T, c *Client) func() error {
			return func() error { return c.MkdirAll("/m") }
		}},
		{"stat", true, func(t *testing.T, c *Client) func() error {
			return func() error { _, err := c.Stat("/pre"); return err }
		}},
		{"open", true, func(t *testing.T, c *Client) func() error {
			return func() error { _, err := c.Open("/pre"); return err }
		}},
		{"readdir", true, func(t *testing.T, c *Client) func() error {
			return func() error { _, err := c.ReadDir("/"); return err }
		}},
		{"read", true, func(t *testing.T, c *Client) func() error {
			f, err := c.Open("/pre")
			if err != nil {
				t.Fatal(err)
			}
			return func() error {
				buf := make([]byte, 5)
				_, err := f.ReadAt(buf, 0)
				if err == nil && string(buf) != "hello" {
					t.Errorf("retried read returned %q, want %q", buf, "hello")
				}
				return err
			}
		}},
		{"size", true, func(t *testing.T, c *Client) func() error {
			f, err := c.Open("/pre")
			if err != nil {
				t.Fatal(err)
			}
			return func() error {
				if got := f.Size(); got != 5 {
					t.Errorf("Size = %d, want 5", got)
				}
				return nil // Size is best-effort; rpc.client.errors carries the verdict
			}
		}},
		{"create", false, func(t *testing.T, c *Client) func() error {
			return func() error { _, err := c.Create("/scratch"); return err }
		}},
		{"write", false, func(t *testing.T, c *Client) func() error {
			f, err := c.Create("/scratch")
			if err != nil {
				t.Fatal(err)
			}
			return func() error { _, err := f.Write([]byte("payload")); return err }
		}},
		{"close", false, func(t *testing.T, c *Client) func() error {
			f, err := c.Create("/scratch")
			if err != nil {
				t.Fatal(err)
			}
			return func() error { return f.Close() }
		}},
		{"remove", false, func(t *testing.T, c *Client) func() error {
			return func() error { return c.Remove("/pre") }
		}},
	}

	for _, fc := range faults {
		for _, oc := range ops {
			t.Run(fc.name+"/"+oc.name, func(t *testing.T) {
				t.Parallel()
				store := vfs.NewMemFS()
				if err := vfs.WriteFile(store, "/pre", []byte("hello")); err != nil {
					t.Fatal(err)
				}
				in := faultfs.MustNew(1, fc.rule)
				in.SetEnabled(false)
				freg := metrics.NewRegistry()
				in.SetMetrics(freg)
				c := startFaultNode(t, store, in, faultPolicy())
				creg := metrics.NewRegistry()
				c.SetMetrics(creg)

				run := oc.setup(t, c)
				in.SetEnabled(true)
				err := run()
				in.SetEnabled(false)

				cs := creg.Snapshot()
				if got := freg.Snapshot().Counters[fc.counter]; got != 1 {
					t.Fatalf("%s = %d, want 1 firing", fc.counter, got)
				}
				if fc.afterSend && !oc.idempotent {
					// Outcome unknown: the call must fail without retrying.
					if err == nil {
						t.Error("non-idempotent op with lost reply succeeded; it must not be re-sent")
					}
					if got := cs.Counters["rpc.client.retries_suppressed"]; got != 1 {
						t.Errorf("retries_suppressed = %d, want 1", got)
					}
					if got := cs.Counters["rpc.client.retries"]; got != 0 {
						t.Errorf("retries = %d, want 0 (unsafe retry happened)", got)
					}
					return
				}
				// Every other combination is retryable and must succeed.
				if err != nil {
					t.Fatalf("%v (op should have been retried to success)", err)
				}
				if got := cs.Counters["rpc.client.errors"]; got != 0 {
					t.Errorf("rpc.client.errors = %d, want 0", got)
				}
				if got := cs.Counters["rpc.client.retries"]; got != 1 {
					t.Errorf("retries = %d, want exactly 1", got)
				}
				if got := cs.Counters["rpc.client.retries_suppressed"]; got != 0 {
					t.Errorf("retries_suppressed = %d, want 0", got)
				}
				if cs.Histograms["rpc.client.retry.backoff_ns"].Count != 1 {
					t.Error("backoff histogram did not record the retry sleep")
				}
			})
		}
	}
}

// TestConcurrentCloseRedial races Close against calls stuck in the
// redial/backoff loop (the server drops every connection at accept). Run
// under -race this is the regression test for Close mutating c.conn
// without the lock.
func TestConcurrentCloseRedial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	pol := RetryPolicy{
		MaxAttempts:   3,
		BaseBackoff:   200 * time.Microsecond,
		MaxBackoff:    time.Millisecond,
		BackoffBudget: 100 * time.Millisecond,
		CallTimeout:   50 * time.Millisecond,
	}
	c, err := DialWith(ln.Addr().String(), nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				c.Stat("/x") // errors expected; the race is the point
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	wg.Wait()
	if _, err := c.Stat("/x"); !errors.Is(err, ErrClientClosed) {
		t.Errorf("call after Close = %v, want ErrClientClosed", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("second Close = %v, want ErrClientClosed", err)
	}
}

// slowStatFS stretches Stat so a request is reliably in flight when the
// server shuts down.
type slowStatFS struct {
	vfs.FS
	delay time.Duration
}

func (s slowStatFS) Stat(name string) (vfs.FileInfo, error) {
	time.Sleep(s.delay)
	return s.FS.Stat(name)
}

// TestServerDrain: Close must wait for in-flight requests and their
// responses, Serve must report ErrServerClosed, and a closed server must
// refuse new listeners.
func TestServerDrain(t *testing.T) {
	srv := NewServer(slowStatFS{vfs.NewMemFS(), 150 * time.Millisecond}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	statDone := make(chan error, 1)
	go func() { _, err := c.Stat("/"); statDone <- err }()
	time.Sleep(30 * time.Millisecond) // let the request reach dispatch

	closeStart := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The handler still had ~120ms of dispatch left when Close began; a
	// graceful Close must have blocked for it.
	if d := time.Since(closeStart); d < 50*time.Millisecond {
		t.Errorf("Close returned after %v; it did not drain the in-flight request", d)
	}
	if err := <-statDone; err != nil {
		t.Errorf("in-flight stat dropped at shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve = %v, want ErrServerClosed", err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if err := srv.Serve(ln2); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

// runTaggedWorkload ingests the dataset into PLFS containers striped over
// two rpc-backed storage nodes, then reads the protein subset back with
// the injector armed, returning the raw frame bytes. Close runs with the
// injector disarmed: close is non-idempotent, so a deliberately lost close
// reply would surface as an error by design, not a bug.
func runTaggedWorkload(t *testing.T, in *faultfs.Injector, creg *metrics.Registry, pdbBytes, traj []byte) []byte {
	t.Helper()
	node := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(vfs.NewMemFS(), nil)
		srv.SetMetrics(metrics.NewRegistry())
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); ln.Close() })
		return ln.Addr().String()
	}
	var dialer Dialer
	if in != nil {
		dialer = faultDialer(in)
	}
	pol := RetryPolicy{
		MaxAttempts:   6,
		BaseBackoff:   500 * time.Microsecond,
		MaxBackoff:    2 * time.Millisecond,
		BackoffBudget: 2 * time.Second,
		CallTimeout:   2 * time.Second,
	}
	ssd, err := DialWith(node(), dialer, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer ssd.Close()
	ssd.SetMetrics(creg)
	hdd, err := DialWith(node(), dialer, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer hdd.Close()
	hdd.SetMetrics(creg)

	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(containers, nil, core.Options{})
	if _, err := a.Ingest("/traj.xtc", pdbBytes, bytes.NewReader(traj)); err != nil {
		t.Fatal(err)
	}

	if in != nil {
		in.SetEnabled(true)
		defer in.SetEnabled(false)
	}
	sr, err := a.OpenSubset("/traj.xtc", core.TagProtein)
	if err != nil {
		t.Fatalf("open subset under faults: %v", err)
	}
	w := xdr.NewWriter(1 << 16)
	frames := 0
	for {
		f, err := sr.ReadFrame()
		if err != nil {
			break
		}
		f.AppendRaw(w)
		frames++
	}
	if frames != 3 {
		t.Fatalf("read %d frames, want 3", frames)
	}
	if in != nil {
		in.SetEnabled(false)
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Bytes()
}

// TestFaultInjectedReadWorkload is the acceptance path: with a mid-call
// connection drop injected on every 3rd conn read, a tagged read workload
// over rpc+plfs completes byte-identical to the no-fault run, with all
// recovery inside the bounded retry policy.
func TestFaultInjectedReadWorkload(t *testing.T) {
	pdbBytes, traj := makeDataset(t)
	baseline := runTaggedWorkload(t, nil, metrics.NewRegistry(), pdbBytes, traj)

	in := faultfs.MustNew(7, faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.read", Every: 3})
	in.SetEnabled(false)
	freg := metrics.NewRegistry()
	in.SetMetrics(freg)
	creg := metrics.NewRegistry()
	faulted := runTaggedWorkload(t, in, creg, pdbBytes, traj)

	if !bytes.Equal(baseline, faulted) {
		t.Fatalf("faulted workload diverged: %d bytes vs %d baseline", len(faulted), len(baseline))
	}
	fs := freg.Snapshot()
	if fs.Counters["faultfs.injected.drops"] == 0 {
		t.Fatal("injector never fired; the run proved nothing")
	}
	cs := creg.Snapshot()
	if cs.Counters["rpc.client.retries"] == 0 {
		t.Error("no retries counted despite injected drops")
	}
	if cs.Counters["rpc.client.retries"] > cs.Counters["rpc.client.requests"] {
		t.Errorf("retries %d exceed requests %d; retry loop unbounded",
			cs.Counters["rpc.client.retries"], cs.Counters["rpc.client.requests"])
	}
	// The read path also fires non-idempotent close ops for the index files
	// it opens (vfs.ReadFile closes them fire-and-forget); a drop landing on
	// a close reply is correctly suppressed, not retried, and the caller
	// tolerates the lost close. So every client error must be one of those
	// suppressed closes — any *other* error means data-path retry failed.
	if cs.Counters["rpc.client.errors"] != cs.Counters["rpc.client.retries_suppressed"] {
		t.Errorf("errors = %d but suppressed = %d; a retryable op failed",
			cs.Counters["rpc.client.errors"], cs.Counters["rpc.client.retries_suppressed"])
	}
}

// TestFaultWorkloadSeed is the randomized smoke pass: ADA_FAULT_SEED
// selects the injector seed ("" = fixed 1, "random" = time-seeded, or an
// explicit integer), the chosen seed is logged for replay, and the
// probabilistic drop schedule it drives must still leave the workload
// byte-identical.
func TestFaultWorkloadSeed(t *testing.T) {
	seed := int64(1)
	switch v := os.Getenv("ADA_FAULT_SEED"); v {
	case "":
	case "random":
		seed = time.Now().UnixNano()
	default:
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("ADA_FAULT_SEED=%q: %v", v, err)
		}
		seed = parsed
	}
	t.Logf("fault seed %d (replay with ADA_FAULT_SEED=%d)", seed, seed)

	pdbBytes, traj := makeDataset(t)
	baseline := runTaggedWorkload(t, nil, metrics.NewRegistry(), pdbBytes, traj)

	in := faultfs.MustNew(seed, faultfs.Rule{Kind: faultfs.KindDrop, Op: "conn.read", Prob: 0.15})
	in.SetEnabled(false)
	creg := metrics.NewRegistry()
	faulted := runTaggedWorkload(t, in, creg, pdbBytes, traj)
	if !bytes.Equal(baseline, faulted) {
		t.Fatalf("seed %d: faulted workload diverged (%d bytes vs %d baseline)",
			seed, len(faulted), len(baseline))
	}
	cs := creg.Snapshot()
	// As in TestFaultInjectedReadWorkload: only suppressed (lost-close)
	// errors are acceptable; any other error is a failed retryable op.
	if cs.Counters["rpc.client.errors"] != cs.Counters["rpc.client.retries_suppressed"] {
		t.Errorf("seed %d: errors = %d but suppressed = %d; a retryable op failed",
			seed, cs.Counters["rpc.client.errors"], cs.Counters["rpc.client.retries_suppressed"])
	}
}
