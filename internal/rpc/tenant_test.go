package rpc

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// readAll opens name and reads n bytes at offset 0 through the client.
func readAll(t *testing.T, c *Client, name string, n int) {
	t.Helper()
	f, err := c.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if got, err := f.ReadAt(buf, 0); got != n {
		t.Fatalf("ReadAt = %d, %v; want %d bytes", got, err, n)
	}
}

// TestTenantAccountingSurvivesRedial: a client that identified as a tenant
// keeps its reads attributed after the transport drops and the retry loop
// redials — the new connection re-declares the tenant before resending.
func TestTenantAccountingSurvivesRedial(t *testing.T) {
	sreg := metrics.NewRegistry()
	fsys := vfs.NewMemFS()
	if err := vfs.WriteFile(fsys, "/data.bin", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	addr, stop := startMeteredNode(t, fsys, sreg, false)
	defer stop()

	// The dialer remembers the live connection so the test can cut it.
	var dmu sync.Mutex
	var last net.Conn
	dialer := func(a string) (net.Conn, error) {
		conn, err := net.Dial("tcp", a)
		if err == nil {
			dmu.Lock()
			last = conn
			dmu.Unlock()
		}
		return conn, err
	}
	c, err := DialWith(addr, dialer, DefaultRetryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(metrics.NewRegistry())
	if err := c.SetTenant("alice"); err != nil {
		t.Fatal(err)
	}

	readAll(t, c, "/data.bin", 4096)

	// Cut the transport under the client; the next call must redial,
	// re-ident, and stay attributed to alice.
	dmu.Lock()
	last.Close()
	dmu.Unlock()
	readAll(t, c, "/data.bin", 4096)

	ss := sreg.Snapshot()
	if got := ss.Counters["rpc.tenant.alice.reads"]; got != 2 {
		t.Errorf("rpc.tenant.alice.reads = %d, want 2", got)
	}
	if got := ss.Counters["rpc.tenant.alice.read_bytes"]; got != 8192 {
		t.Errorf("rpc.tenant.alice.read_bytes = %d, want 8192", got)
	}
	if got := ss.Counters["rpc.server.op.ident"]; got < 2 {
		t.Errorf("rpc.server.op.ident = %d, want >= 2 (initial + redial re-ident)", got)
	}
}

// TestTenantQuotaThrottlesReads: with a per-tenant quota set, an identified
// tenant's reads are paced to the configured rate while anonymous
// connections stay unmetered.
func TestTenantQuotaThrottlesReads(t *testing.T) {
	sreg := metrics.NewRegistry()
	fsys := vfs.NewMemFS()
	const frame = 8192
	if err := vfs.WriteFile(fsys, "/big.bin", make([]byte, frame)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := NewServer(fsys, nil)
	srv.SetMetrics(sreg)
	// No burst: every metered read sleeps out its full cost (8 KiB at
	// 80 KiB/s = 100 ms), which a wall clock can assert robustly.
	srv.SetTenantQuota(80<<10, 0)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.handleConn(conn)
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(metrics.NewRegistry())
	if err := c.SetTenant("bulk"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	readAll(t, c, "/big.bin", frame)
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("metered read took %v, want >= ~100ms at 80 KiB/s", elapsed)
	}

	anon, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	anon.SetMetrics(metrics.NewRegistry())
	readAll(t, anon, "/big.bin", frame)

	ss := sreg.Snapshot()
	if got := ss.Histograms["rpc.server.throttle.ns"].Count; got < 1 {
		t.Error("no throttle sleeps recorded for the metered tenant")
	}
	if got := ss.Counters["rpc.tenant.bulk.reads"]; got != 1 {
		t.Errorf("rpc.tenant.bulk.reads = %d, want 1 (anonymous read must not count)", got)
	}
}

// TestSetTenantRejectsEmptyName: the server refuses an empty tenant, so
// misconfigured clients fail loudly instead of minting a nameless bucket.
func TestSetTenantRejectsEmptyName(t *testing.T) {
	addr, stop := startMeteredNode(t, vfs.NewMemFS(), metrics.NewRegistry(), false)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMetrics(metrics.NewRegistry())
	if err := c.SetTenant(""); err == nil {
		t.Fatal("SetTenant(\"\") succeeded")
	}
}
