// Package rpc exposes a vfs.FS over a TCP connection with a compact
// length-prefixed binary protocol, so ADA's backends can run as real
// storage-node processes (cmd/adanode) instead of in-process stores.
//
// Wire format, both directions:
//
//	uint32  payload length (big-endian, excluding itself)
//	payload XDR-encoded body
//
// A request body is: uint32 opcode, then opcode-specific XDR fields. A
// response body is: uint32 status (0 = OK, 1 = error), then either an error
// string or opcode-specific fields. One request is in flight per
// connection at a time; clients serialize with a mutex.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Opcodes.
const (
	opCreate uint32 = iota + 1
	opOpen
	opRead
	opWrite
	opClose
	opStat
	opReadDir
	opMkdirAll
	opRemove
	opSize
	opRename
	opIdent    // declare the connection's tenant for per-tenant accounting
	opTableGet // fetch the node's cluster placement table (version + bytes)
	opTablePut // install a cluster placement table if not stale
	opWatch    // long-poll: block until a file's content differs from a CRC
)

// MaxPayload bounds a single message (catches corrupt length prefixes).
const MaxPayload = 64 << 20

// ErrProtocol is returned for malformed frames.
var ErrProtocol = errors.New("rpc: protocol error")

// writeFrame sends one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// respondErr encodes an error response.
func respondErr(err error) []byte {
	w := xdr.NewWriter(64)
	w.Uint32(1)
	w.String(err.Error())
	return w.Bytes()
}

// respondOK starts an OK response; the caller appends fields.
func respondOK() *xdr.Writer {
	w := xdr.NewWriter(256)
	w.Uint32(0)
	return w
}

// decodeStatus consumes the status word, converting an error response into
// a Go error.
func decodeStatus(r *xdr.Reader) error {
	status := r.Uint32()
	if err := r.Err(); err != nil {
		return err
	}
	if status == 0 {
		return nil
	}
	msg := r.String()
	if err := r.Err(); err != nil {
		return err
	}
	return remoteError(msg)
}

// remoteError reconstructs the vfs sentinel errors from the wire so that
// errors.Is works across the connection.
func remoteError(msg string) error {
	for _, sentinel := range []error{vfs.ErrNotExist, vfs.ErrExist, vfs.ErrIsDir, vfs.ErrNotDir, vfs.ErrCorrupted} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return errors.New(msg)
}
