package rpc

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
)

// Pool is a vfs.FS over a fixed set of connections to ONE storage node.
// A single Client serializes requests on its connection, so a reader
// fanning out concurrent frame fetches would convoy behind one wire; the
// pool spreads calls round-robin across size independent connections
// while presenting the same FS surface.
//
// Connections are dialed lazily (DialLazy), so constructing a pool to a
// down node succeeds; each call then fails under the member client's
// retry policy, wrapping vfs.ErrBackendDown once retries exhaust. Files
// stay bound to the connection that opened them, which is safe because
// the server's handle table is per-process: the handle remains valid even
// if that member redials.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
}

var _ vfs.FS = (*Pool)(nil)

// NewPool returns a pool of size lazy connections to addr through dialer
// (nil means plain TCP) under the given retry policy. size values below 1
// behave as 1.
func NewPool(addr string, size int, dialer Dialer, policy RetryPolicy) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{clients: make([]*Client, size)}
	for i := range p.clients {
		p.clients[i] = DialLazy(addr, dialer, policy)
	}
	return p
}

// pick returns the next member connection, round-robin.
func (p *Pool) pick() *Client {
	n := p.next.Add(1)
	return p.clients[(n-1)%uint64(len(p.clients))]
}

// SetTenant identifies every member connection's traffic as tenant (see
// Client.SetTenant). Members that cannot reach the node right now still
// record the identity and re-declare it on their next successful redial,
// so one down member does not abort pool-wide identification; the first
// hard failure is still reported.
func (p *Pool) SetTenant(tenant string) error {
	var first error
	for _, c := range p.clients {
		if err := c.SetTenant(tenant); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetRetryPolicy replaces the retry policy on every member connection.
func (p *Pool) SetRetryPolicy(pol RetryPolicy) {
	for _, c := range p.clients {
		c.SetRetryPolicy(pol)
	}
}

// SetMetrics points every member's counters at reg.
func (p *Pool) SetMetrics(reg *metrics.Registry) {
	for _, c := range p.clients {
		c.SetMetrics(reg)
	}
}

// FetchClusterTable retrieves the node's placement table via one member.
func (p *Pool) FetchClusterTable() ([]byte, uint64, error) {
	return p.pick().FetchClusterTable()
}

// PushClusterTable installs a placement table on the node via one member.
func (p *Pool) PushClusterTable(data []byte, version uint64) error {
	return p.pick().PushClusterTable(data, version)
}

// Close closes every member connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Create implements vfs.FS.
func (p *Pool) Create(name string) (vfs.File, error) { return p.pick().Create(name) }

// Open implements vfs.FS.
func (p *Pool) Open(name string) (vfs.File, error) { return p.pick().Open(name) }

// Stat implements vfs.FS.
func (p *Pool) Stat(name string) (vfs.FileInfo, error) { return p.pick().Stat(name) }

// ReadDir implements vfs.FS.
func (p *Pool) ReadDir(name string) ([]vfs.FileInfo, error) { return p.pick().ReadDir(name) }

// MkdirAll implements vfs.FS.
func (p *Pool) MkdirAll(name string) error { return p.pick().MkdirAll(name) }

// Remove implements vfs.FS.
func (p *Pool) Remove(name string) error { return p.pick().Remove(name) }

// Rename implements vfs.FS.
func (p *Pool) Rename(oldname, newname string) error { return p.pick().Rename(oldname, newname) }

// WatchFile long-polls name via one member connection (see
// Client.WatchFile). The poll parks that member for its duration; demand
// traffic keeps flowing on the others.
func (p *Pool) WatchFile(name string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error) {
	return p.pick().WatchFile(name, lastCRC, timeout)
}
