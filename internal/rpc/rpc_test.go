package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gpcr"
	"repro/internal/mdsim"
	"repro/internal/pdb"
	"repro/internal/plfs"
	"repro/internal/vfs"
	"repro/internal/xtc"
)

// startNode launches a server over a fresh MemFS on a loopback listener and
// returns a connected client.
func startNode(t *testing.T) (*Client, *vfs.MemFS) {
	t.Helper()
	store := vfs.NewMemFS()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, nil)
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, store
}

func TestRemoteWriteRead(t *testing.T) {
	c, store := startNode(t)
	if err := c.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("remote!"), 10000)
	if err := vfs.WriteFile(c, "/data/f", data); err != nil {
		t.Fatal(err)
	}
	// Visible on the server's store.
	got, err := vfs.ReadFile(store, "/data/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("server store: %d bytes, %v", len(got), err)
	}
	// And readable back through the client.
	got, err = vfs.ReadFile(c, "/data/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("client read: %d bytes, %v", len(got), err)
	}
}

func TestRemoteStatReadDir(t *testing.T) {
	c, _ := startNode(t)
	if err := c.MkdirAll("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/d/a", []byte("xy")); err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat("/d/a")
	if err != nil || info.Size != 2 || info.IsDir {
		t.Errorf("Stat = %+v, %v", info, err)
	}
	entries, err := c.ReadDir("/d")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %+v, %v", entries, err)
	}
	if entries[0].Name != "a" || !entries[1].IsDir {
		t.Errorf("entries = %+v", entries)
	}
}

func TestRemoteErrorsPreserveSentinels(t *testing.T) {
	c, _ := startNode(t)
	if _, err := c.Open("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("Open missing = %v, want ErrNotExist", err)
	}
	if _, err := c.Stat("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("Stat missing = %v", err)
	}
	if err := vfs.WriteFile(c, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadDir("/f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("ReadDir on file = %v", err)
	}
}

func TestRemoteRemove(t *testing.T) {
	c, store := startNode(t)
	if err := vfs.WriteFile(c, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(store, "/f") {
		t.Error("file still on server")
	}
	if err := c.Remove("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("double remove = %v", err)
	}
}

func TestRemoteReadAt(t *testing.T) {
	c, _ := startNode(t)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := vfs.WriteFile(c, "/f", data); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != data[500+i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if f.Size() != 1000 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := startNode(t)
	if err := c.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("/d/f%d", i)
			data := bytes.Repeat([]byte{byte(i)}, 10000+i)
			if err := vfs.WriteFile(c, name, data); err != nil {
				errs <- err
				return
			}
			got, err := vfs.ReadFile(c, name)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("goroutine %d: data mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestADAOverRemoteBackends is the cross-process integration path: two
// storage-node servers over TCP, PLFS containers spanning them, ADA
// ingesting and serving tag reads through the sockets.
func TestADAOverRemoteBackends(t *testing.T) {
	ssd, _ := startNode(t)
	hdd, _ := startNode(t)
	containers, err := plfs.New(
		plfs.Backend{Name: "ssd", FS: ssd, Mount: "/mnt1"},
		plfs.Backend{Name: "hdd", FS: hdd, Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(containers, nil, core.Options{})

	pdbBytes, traj := makeDataset(t)
	rep, err := a.Ingest("/remote.xtc", pdbBytes, bytes.NewReader(traj))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 3 {
		t.Fatalf("frames = %d", rep.Frames)
	}
	sr, err := a.OpenSubset("/remote.xtc", core.TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	n := 0
	for {
		f, err := sr.ReadFrame()
		if err != nil {
			break
		}
		if f.NAtoms() != sr.Ranges.Count() {
			t.Fatalf("frame atoms = %d", f.NAtoms())
		}
		n++
	}
	if n != 3 {
		t.Errorf("read %d subset frames over TCP, want 3", n)
	}
}

// makeDataset builds a small pdb + compressed trajectory pair.
func makeDataset(t *testing.T) (pdbBytes, traj []byte) {
	t.Helper()
	sys, err := gpcr.Scaled(300).Build()
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := pdb.Write(&pb, sys.Structure); err != nil {
		t.Fatal(err)
	}
	cats := make([]pdb.Category, sys.Structure.NAtoms())
	for i := range cats {
		cats[i] = sys.Structure.Atoms[i].Category
	}
	s, err := mdsim.New(sys.Coords, cats, sys.Box, mdsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	w := xtc.NewWriter(&tb)
	if err := s.WriteTrajectory(w, 3); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), tb.Bytes()
}

func TestFrameLimit(t *testing.T) {
	// A corrupt length prefix must not allocate gigabytes.
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		// Absurd frame length.
		client.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	if _, err := readFrame(server); !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}
