package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ErrClientClosed is returned by every call issued after Close.
var ErrClientClosed = errors.New("rpc: client closed")

// Dialer connects to a storage-node address. Custom dialers let tests and
// the fault harness wrap the transport (e.g. faultfs.WrapConn).
type Dialer func(addr string) (net.Conn, error)

// Client is a vfs.FS backed by a remote storage node. It is safe for
// concurrent use; requests are serialized over the single connection.
//
// A dialed client (Dial/DialWith, as opposed to NewClient over an existing
// connection) runs every call under its RetryPolicy: per-attempt
// connection deadlines, and redial-and-retry with bounded exponential
// backoff when that is provably safe (see RetryPolicy for the idempotency
// rules). The server's file-handle table is per-process, not
// per-connection, so open handles stay valid across a reconnect to the
// same node. Retries are counted under "rpc.client.retries", suppressed
// unsafe retries under "rpc.client.retries_suppressed", and backoff sleeps
// under the "rpc.client.retry.backoff_ns" histogram.
//
// When retries are exhausted (or redial fails) the returned error wraps
// vfs.ErrBackendDown, so layers above can degrade instead of hanging.
// Close waits for an in-flight call to finish, then closes the transport;
// later calls return ErrClientClosed.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn // nil after a transport teardown until the next redial
	addr   string   // non-empty iff dialed (enables redial retry)
	tenant string   // re-declared on every redial once SetTenant is called
	closed bool
	policy RetryPolicy
	dial   Dialer
	rng    *rand.Rand
	m      clientMetrics
}

// clientMetrics are the client-side request/response/error/retry handles.
type clientMetrics struct {
	requests   *metrics.Counter
	responses  *metrics.Counter
	errors     *metrics.Counter
	retries    *metrics.Counter
	suppressed *metrics.Counter
	bytesOut   *metrics.Counter
	bytesIn    *metrics.Counter
	latency    *metrics.Histogram
	backoffNS  *metrics.Histogram
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	return clientMetrics{
		requests:   reg.Counter("rpc.client.requests"),
		responses:  reg.Counter("rpc.client.responses"),
		errors:     reg.Counter("rpc.client.errors"),
		retries:    reg.Counter("rpc.client.retries"),
		suppressed: reg.Counter("rpc.client.retries_suppressed"),
		bytesOut:   reg.Counter("rpc.client.bytes_sent"),
		bytesIn:    reg.Counter("rpc.client.bytes_received"),
		latency:    reg.Histogram("rpc.client.call.ns"),
		backoffNS:  reg.Histogram("rpc.client.retry.backoff_ns"),
	}
}

var _ vfs.FS = (*Client)(nil)

// Dial connects to a storage node with the default retry policy.
func Dial(addr string) (*Client, error) { return DialWith(addr, nil, DefaultRetryPolicy()) }

// DialWith connects to a storage node through dialer (nil means plain TCP)
// under the given retry policy.
func DialWith(addr string, dialer Dialer, policy RetryPolicy) (*Client, error) {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{
		conn: conn, addr: addr, dial: dialer,
		policy: policy,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		m:      newClientMetrics(metrics.Default),
	}
	return c, nil
}

// DialLazy returns a dialed client without connecting yet: the first call
// redials under the retry policy, exactly as if an earlier attempt had
// torn the connection down. Cluster fabrics use it so constructing a
// multi-node client succeeds while some nodes are down — the node's
// failure surfaces (wrapping vfs.ErrBackendDown once retries exhaust)
// only on calls that actually route to it.
func DialLazy(addr string, dialer Dialer, policy RetryPolicy) *Client {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	return &Client{
		addr: addr, dial: dialer,
		policy: policy,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		m:      newClientMetrics(metrics.Default),
	}
}

// NewClient wraps an existing connection (useful for tests over pipes).
// The client fails fast on transport errors — with no dial address there
// is nothing to redial — but still applies the policy's call deadline.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:   conn,
		policy: DefaultRetryPolicy(),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		m:      newClientMetrics(metrics.Default),
	}
}

// SetMetrics points the client's counters at reg (metrics.Default by
// default; nil disables collection). Call before issuing requests.
func (c *Client) SetMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = newClientMetrics(reg)
}

// SetTenant identifies this client's traffic as belonging to tenant: the
// node accounts (and, when configured, rate-limits) its reads under
// rpc.tenant.<name>.*. The identity sticks to the client, not the
// connection — after a redial the next attempt re-declares it before
// resending the interrupted call, so per-tenant accounting survives
// transport blips. Identifying is idempotent; the last name sent wins.
func (c *Client) SetTenant(tenant string) error {
	req := request(opIdent)
	req.String(tenant)
	c.mu.Lock()
	c.tenant = tenant
	c.mu.Unlock()
	_, err := c.call(req)
	return err
}

// ident declares c.tenant on conn (a fresh redial). Callers hold c.mu and
// have already armed the call deadline. The real request has not been sent
// yet, so a failure here is always safe to retry.
func (c *Client) ident(conn net.Conn) error {
	req := request(opIdent)
	req.String(c.tenant)
	raw := req.Bytes()
	if err := writeFrame(conn, raw); err != nil {
		return fmt.Errorf("rpc: ident send: %w", err)
	}
	c.m.bytesOut.Add(int64(len(raw)) + 4)
	payload, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("rpc: ident receive: %w", err)
	}
	c.m.bytesIn.Add(int64(len(payload)) + 4)
	return decodeStatus(xdr.NewReader(payload))
}

// FetchClusterTable retrieves the node's cluster placement table and its
// version. A node with no table returns (nil, 0, nil).
func (c *Client) FetchClusterTable() ([]byte, uint64, error) {
	r, err := c.call(request(opTableGet))
	if err != nil {
		return nil, 0, err
	}
	version := r.Uint64()
	data := r.VarOpaque()
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if len(data) == 0 {
		return nil, version, nil
	}
	return data, version, nil
}

// PushClusterTable installs a placement table on the node. The node
// rejects versions older than what it already holds.
func (c *Client) PushClusterTable(data []byte, version uint64) error {
	req := request(opTablePut)
	req.Uint64(version)
	req.VarOpaque(data)
	_, err := c.call(req)
	return err
}

// WatchFile long-polls name on the node: it returns when the file's
// CRC32C differs from lastCRC (changed=true, with the new content and CRC)
// or when the timeout elapses (changed=false). The poll runs server-side —
// one round trip parks on the node instead of hammering reads over the
// wire — which is what makes remote live-head tailing cheap. A missing
// file reads as empty with CRC 0.
//
// The requested timeout is clamped to half the policy's CallTimeout so the
// server's reply always beats the client's connection deadline.
func (c *Client) WatchFile(name string, lastCRC uint32, timeout time.Duration) ([]byte, uint32, bool, error) {
	if t := c.policy.CallTimeout; t > 0 && timeout > t/2 {
		timeout = t / 2
	}
	if timeout < 0 {
		timeout = 0
	}
	req := request(opWatch)
	req.String(name)
	req.Uint32(lastCRC)
	req.Uint32(uint32(timeout / time.Millisecond))
	r, err := c.call(req)
	if err != nil {
		return nil, 0, false, err
	}
	changed := r.Uint32() != 0
	crc := r.Uint32()
	data := r.VarOpaque()
	if err := r.Err(); err != nil {
		return nil, 0, false, err
	}
	if !changed {
		return nil, lastCRC, false, nil
	}
	if len(data) == 0 {
		data = nil
	}
	return data, crc, true, nil
}

// SetRetryPolicy replaces the retry policy for subsequent calls.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// Close shuts the client down. It waits for an in-flight call (including
// its redial/backoff loop) to finish, so it never races the redial path or
// leaks a freshly dialed connection. Calls issued after Close return
// ErrClientClosed; so does a second Close.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call sends one request and decodes the status word of the response.
func (c *Client) call(req *xdr.Writer) (*xdr.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.m.requests.Inc()
	start := time.Now()
	raw := req.Bytes()
	payload, err := c.exchange(binary.BigEndian.Uint32(raw), raw)
	if err != nil {
		c.m.errors.Inc()
		return nil, err
	}
	c.m.responses.Inc()
	c.m.latency.Observe(time.Since(start).Nanoseconds())
	r := xdr.NewReader(payload)
	if err := decodeStatus(r); err != nil {
		c.m.errors.Inc()
		return nil, err
	}
	return r, nil
}

// exchange performs one framed round trip under the retry policy. Failed
// attempts tear the connection down; when retrying is safe (see
// RetryPolicy) the next attempt redials. Callers hold c.mu.
func (c *Client) exchange(op uint32, req []byte) ([]byte, error) {
	pol := c.policy
	var backoffSpent time.Duration
	for attempt := 1; ; attempt++ {
		sent, payload, err := c.attempt(req)
		if err == nil {
			return payload, nil
		}
		if c.conn != nil {
			// The conn's state is indeterminate mid-frame: discard it.
			c.conn.Close()
			c.conn = nil
		}
		if c.addr == "" {
			return nil, err // wraps an existing conn; nothing to redial
		}
		if sent && !idempotentOp(op) {
			// The full frame reached the kernel and the reply was lost:
			// the server may have applied the op, so re-sending could
			// double-apply it. Fail with the outcome unknown.
			c.m.suppressed.Inc()
			return nil, fmt.Errorf("rpc: %s reply lost after send; op is not idempotent, not retried: %w",
				opName(op), err)
		}
		if attempt >= pol.MaxAttempts {
			return nil, fmt.Errorf("rpc: %s failed after %d attempts: %w: %w",
				opName(op), attempt, vfs.ErrBackendDown, err)
		}
		d := c.backoffDelay(attempt)
		if pol.BackoffBudget > 0 && backoffSpent+d > pol.BackoffBudget {
			return nil, fmt.Errorf("rpc: %s exhausted its %v backoff budget: %w: %w",
				opName(op), pol.BackoffBudget, vfs.ErrBackendDown, err)
		}
		backoffSpent += d
		c.m.backoffNS.Observe(int64(d))
		if d > 0 {
			time.Sleep(d)
		}
		c.m.retries.Inc()
	}
}

// attempt performs a single framed round trip, redialing first if the
// previous attempt tore the connection down. sent reports whether the
// request frame was completely handed to the transport — when false the
// server provably never parsed the request, so any op is safe to re-send.
func (c *Client) attempt(req []byte) (sent bool, payload []byte, err error) {
	fresh := false
	if c.conn == nil {
		if c.addr == "" {
			return false, nil, fmt.Errorf("rpc: connection lost: %w", vfs.ErrBackendDown)
		}
		conn, derr := c.dial(c.addr)
		if derr != nil {
			return false, nil, fmt.Errorf("rpc: redial %s: %w", c.addr, derr)
		}
		c.conn = conn
		fresh = true
	}
	conn := c.conn
	if t := c.policy.CallTimeout; t > 0 {
		conn.SetDeadline(time.Now().Add(t))
		defer conn.SetDeadline(time.Time{})
	}
	if fresh && c.tenant != "" {
		// Re-declare the tenant before the interrupted call goes out, so
		// the new connection's reads stay attributed. The request frame has
		// not been sent, so sent=false keeps any op retry-safe.
		if ierr := c.ident(conn); ierr != nil {
			return false, nil, ierr
		}
	}
	if werr := writeFrame(conn, req); werr != nil {
		return false, nil, fmt.Errorf("rpc: send: %w", werr)
	}
	c.m.bytesOut.Add(int64(len(req)) + 4)
	payload, rerr := readFrame(conn)
	if rerr != nil {
		return true, nil, fmt.Errorf("rpc: receive: %w", rerr)
	}
	c.m.bytesIn.Add(int64(len(payload)) + 4)
	return true, payload, nil
}

func request(op uint32) *xdr.Writer {
	w := xdr.NewWriter(256)
	w.Uint32(op)
	return w
}

func (c *Client) openLike(op uint32, name string) (vfs.File, error) {
	req := request(op)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return nil, err
	}
	fd := r.Uint32()
	size := r.Int64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, name: vfs.Clean(name), fd: fd, size: size}, nil
}

// Create implements vfs.FS.
func (c *Client) Create(name string) (vfs.File, error) { return c.openLike(opCreate, name) }

// Open implements vfs.FS.
func (c *Client) Open(name string) (vfs.File, error) { return c.openLike(opOpen, name) }

// Stat implements vfs.FS.
func (c *Client) Stat(name string) (vfs.FileInfo, error) {
	req := request(opStat)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	info := decodeInfo(r)
	return info, r.Err()
}

// ReadDir implements vfs.FS.
func (c *Client) ReadDir(name string) ([]vfs.FileInfo, error) {
	req := request(opReadDir)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return nil, err
	}
	n := r.Uint32()
	entries := make([]vfs.FileInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		entries = append(entries, decodeInfo(r))
	}
	return entries, r.Err()
}

// MkdirAll implements vfs.FS.
func (c *Client) MkdirAll(name string) error {
	req := request(opMkdirAll)
	req.String(name)
	_, err := c.call(req)
	return err
}

// Remove implements vfs.FS.
func (c *Client) Remove(name string) error {
	req := request(opRemove)
	req.String(name)
	_, err := c.call(req)
	return err
}

// Rename implements vfs.FS.
func (c *Client) Rename(oldname, newname string) error {
	req := request(opRename)
	req.String(oldname)
	req.String(newname)
	_, err := c.call(req)
	return err
}

// remoteFile is a handle on the server.
type remoteFile struct {
	c      *Client
	name   string
	fd     uint32
	size   int64
	off    int64
	closed bool
}

func (f *remoteFile) Name() string { return f.name }

func (f *remoteFile) Size() int64 {
	req := request(opSize)
	req.Uint32(f.fd)
	r, err := f.c.call(req)
	if err != nil {
		return f.size // best effort: the size at open time
	}
	if s := r.Int64(); r.Err() == nil {
		f.size = s
	}
	return f.size
}

func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	req := request(opRead)
	req.Uint32(f.fd)
	req.Int64(off)
	req.Uint32(uint32(len(p)))
	r, err := f.c.call(req)
	if err != nil {
		return 0, err
	}
	eof := r.Uint32() != 0
	data := r.VarOpaque()
	if err := r.Err(); err != nil {
		return 0, err
	}
	n := copy(p, data)
	if eof || n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *remoteFile) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	if err == io.EOF && n > 0 {
		// Partial read before EOF: report the bytes now, EOF next call.
		return n, nil
	}
	return n, err
}

func (f *remoteFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	total := 0
	// Chunk large writes under the frame limit.
	const chunk = MaxPayload / 4
	for total < len(p) {
		end := total + chunk
		if end > len(p) {
			end = len(p)
		}
		want := end - total
		req := request(opWrite)
		req.Uint32(f.fd)
		req.VarOpaque(p[total:end])
		r, err := f.c.call(req)
		if err != nil {
			return total, err
		}
		n := int(r.Uint32())
		if err := r.Err(); err != nil {
			return total, err
		}
		total += n
		if n != want {
			return total, fmt.Errorf("rpc: short write %d of %d", n, want)
		}
	}
	return total, nil
}

func (f *remoteFile) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	req := request(opClose)
	req.Uint32(f.fd)
	_, err := f.c.call(req)
	return err
}
