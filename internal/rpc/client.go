package rpc

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Client is a vfs.FS backed by a remote storage node. It is safe for
// concurrent use; requests are serialized over the single connection.
//
// A dialed client (Dial, as opposed to NewClient over an existing
// connection) transparently redials once when the transport fails
// mid-call and retries the request: the server's file-handle table is
// per-process, not per-connection, so open handles stay valid across a
// reconnect to the same node. Retries are counted under
// "rpc.client.retries".
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	addr string // non-empty iff dialed (enables redial retry)
	m    clientMetrics
}

// clientMetrics are the client-side request/response/error/retry handles.
type clientMetrics struct {
	requests  *metrics.Counter
	responses *metrics.Counter
	errors    *metrics.Counter
	retries   *metrics.Counter
	bytesOut  *metrics.Counter
	bytesIn   *metrics.Counter
	latency   *metrics.Histogram
}

func newClientMetrics(reg *metrics.Registry) clientMetrics {
	return clientMetrics{
		requests:  reg.Counter("rpc.client.requests"),
		responses: reg.Counter("rpc.client.responses"),
		errors:    reg.Counter("rpc.client.errors"),
		retries:   reg.Counter("rpc.client.retries"),
		bytesOut:  reg.Counter("rpc.client.bytes_sent"),
		bytesIn:   reg.Counter("rpc.client.bytes_received"),
		latency:   reg.Histogram("rpc.client.call.ns"),
	}
}

var _ vfs.FS = (*Client)(nil)

// Dial connects to a storage node.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, addr: addr, m: newClientMetrics(metrics.Default)}, nil
}

// NewClient wraps an existing connection (useful for tests over pipes).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, m: newClientMetrics(metrics.Default)}
}

// SetMetrics points the client's counters at reg (metrics.Default by
// default; nil disables collection). Call before issuing requests.
func (c *Client) SetMetrics(reg *metrics.Registry) { c.m = newClientMetrics(reg) }

// Close shuts the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// call sends one request and decodes the status word of the response.
func (c *Client) call(req *xdr.Writer) (*xdr.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.requests.Inc()
	start := time.Now()
	payload, err := c.exchange(req.Bytes())
	if err != nil {
		c.m.errors.Inc()
		return nil, err
	}
	c.m.responses.Inc()
	c.m.latency.Observe(time.Since(start).Nanoseconds())
	r := xdr.NewReader(payload)
	if err := decodeStatus(r); err != nil {
		c.m.errors.Inc()
		return nil, err
	}
	return r, nil
}

// exchange performs one framed round trip, redialing once on transport
// failure when the client owns its dial address. Callers hold c.mu.
func (c *Client) exchange(req []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		sendErr := writeFrame(c.conn, req)
		var payload []byte
		var recvErr error
		if sendErr == nil {
			c.m.bytesOut.Add(int64(len(req)) + 4)
			payload, recvErr = readFrame(c.conn)
			if recvErr == nil {
				c.m.bytesIn.Add(int64(len(payload)) + 4)
				return payload, nil
			}
		}
		if c.addr == "" || attempt > 0 {
			if sendErr != nil {
				return nil, fmt.Errorf("rpc: send: %w", sendErr)
			}
			return nil, fmt.Errorf("rpc: receive: %w", recvErr)
		}
		conn, dialErr := net.Dial("tcp", c.addr)
		if dialErr != nil {
			return nil, fmt.Errorf("rpc: redial %s: %w", c.addr, dialErr)
		}
		c.conn.Close()
		c.conn = conn
		c.m.retries.Inc()
	}
}

func request(op uint32) *xdr.Writer {
	w := xdr.NewWriter(256)
	w.Uint32(op)
	return w
}

func (c *Client) openLike(op uint32, name string) (vfs.File, error) {
	req := request(op)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return nil, err
	}
	fd := r.Uint32()
	size := r.Int64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &remoteFile{c: c, name: vfs.Clean(name), fd: fd, size: size}, nil
}

// Create implements vfs.FS.
func (c *Client) Create(name string) (vfs.File, error) { return c.openLike(opCreate, name) }

// Open implements vfs.FS.
func (c *Client) Open(name string) (vfs.File, error) { return c.openLike(opOpen, name) }

// Stat implements vfs.FS.
func (c *Client) Stat(name string) (vfs.FileInfo, error) {
	req := request(opStat)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	info := decodeInfo(r)
	return info, r.Err()
}

// ReadDir implements vfs.FS.
func (c *Client) ReadDir(name string) ([]vfs.FileInfo, error) {
	req := request(opReadDir)
	req.String(name)
	r, err := c.call(req)
	if err != nil {
		return nil, err
	}
	n := r.Uint32()
	entries := make([]vfs.FileInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		entries = append(entries, decodeInfo(r))
	}
	return entries, r.Err()
}

// MkdirAll implements vfs.FS.
func (c *Client) MkdirAll(name string) error {
	req := request(opMkdirAll)
	req.String(name)
	_, err := c.call(req)
	return err
}

// Remove implements vfs.FS.
func (c *Client) Remove(name string) error {
	req := request(opRemove)
	req.String(name)
	_, err := c.call(req)
	return err
}

// remoteFile is a handle on the server.
type remoteFile struct {
	c      *Client
	name   string
	fd     uint32
	size   int64
	off    int64
	closed bool
}

func (f *remoteFile) Name() string { return f.name }

func (f *remoteFile) Size() int64 {
	req := request(opSize)
	req.Uint32(f.fd)
	r, err := f.c.call(req)
	if err != nil {
		return f.size // best effort: the size at open time
	}
	if s := r.Int64(); r.Err() == nil {
		f.size = s
	}
	return f.size
}

func (f *remoteFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	req := request(opRead)
	req.Uint32(f.fd)
	req.Int64(off)
	req.Uint32(uint32(len(p)))
	r, err := f.c.call(req)
	if err != nil {
		return 0, err
	}
	eof := r.Uint32() != 0
	data := r.VarOpaque()
	if err := r.Err(); err != nil {
		return 0, err
	}
	n := copy(p, data)
	if eof || n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *remoteFile) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.off)
	f.off += int64(n)
	if err == io.EOF && n > 0 {
		// Partial read before EOF: report the bytes now, EOF next call.
		return n, nil
	}
	return n, err
}

func (f *remoteFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	total := 0
	// Chunk large writes under the frame limit.
	const chunk = MaxPayload / 4
	for total < len(p) {
		end := total + chunk
		if end > len(p) {
			end = len(p)
		}
		want := end - total
		req := request(opWrite)
		req.Uint32(f.fd)
		req.VarOpaque(p[total:end])
		r, err := f.c.call(req)
		if err != nil {
			return total, err
		}
		n := int(r.Uint32())
		if err := r.Err(); err != nil {
			return total, err
		}
		total += n
		if n != want {
			return total, fmt.Errorf("rpc: short write %d of %d", n, want)
		}
	}
	return total, nil
}

func (f *remoteFile) Close() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	req := request(opClose)
	req.Uint32(f.fd)
	_, err := f.c.call(req)
	return err
}
