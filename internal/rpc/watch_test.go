package rpc

import (
	"bytes"
	"hash/crc32"
	"testing"
	"time"

	"repro/internal/vfs"
)

func watchCRC(data []byte) uint32 { return crc32.Checksum(data, watchCRCTable) }

// TestWatchImmediateChange: a watch against a stale CRC returns at once
// with the current content.
func TestWatchImmediateChange(t *testing.T) {
	c, store := startNode(t)
	if err := vfs.WriteFile(store, "/head", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, crc, changed, err := c.WatchFile("/head", 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("changed=%v data=%q", changed, data)
	}
	if crc != watchCRC([]byte("v1")) {
		t.Fatalf("crc = %#x", crc)
	}
}

// TestWatchBlocksUntilChange: a watch with the current CRC parks on the
// server and returns when the file is replaced.
func TestWatchBlocksUntilChange(t *testing.T) {
	c, store := startNode(t)
	if err := vfs.WriteFile(store, "/head", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cur := watchCRC([]byte("v1"))

	type result struct {
		data    []byte
		crc     uint32
		changed bool
		err     error
	}
	res := make(chan result, 1)
	go func() {
		var r result
		r.data, r.crc, r.changed, r.err = c.WatchFile("/head", cur, 5*time.Second)
		res <- r
	}()

	// The watcher must still be parked, then observe the replacement.
	time.Sleep(20 * time.Millisecond)
	select {
	case r := <-res:
		t.Fatalf("watch returned before the change: %+v", r)
	default:
	}
	if err := vfs.WriteFile(store, "/head", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !r.changed || !bytes.Equal(r.data, []byte("v2")) || r.crc != watchCRC([]byte("v2")) {
		t.Fatalf("watch after change: %+v", r)
	}
}

// TestWatchTimeout: an unchanged file returns changed=false with the
// caller's CRC after the requested timeout.
func TestWatchTimeout(t *testing.T) {
	c, store := startNode(t)
	if err := vfs.WriteFile(store, "/head", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cur := watchCRC([]byte("v1"))
	start := time.Now()
	data, crc, changed, err := c.WatchFile("/head", cur, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if changed || data != nil || crc != cur {
		t.Fatalf("timeout poll: changed=%v data=%q crc=%#x", changed, data, crc)
	}
	if e := time.Since(start); e < 25*time.Millisecond {
		t.Fatalf("watch returned in %v, before the timeout", e)
	}
}

// TestWatchMissingFile: absence reads as empty with CRC 0, so creation is
// a change and watching a missing file with CRC 0 just times out.
func TestWatchMissingFile(t *testing.T) {
	c, store := startNode(t)
	_, _, changed, err := c.WatchFile("/nope", 0, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("missing file with CRC 0 reported a change")
	}
	// Creation flips the CRC and wakes the watcher.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(10 * time.Millisecond)
		vfs.WriteFile(store, "/nope", []byte("born"))
	}()
	data, crc, changed, err := c.WatchFile("/nope", 0, 5*time.Second)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !bytes.Equal(data, []byte("born")) || crc != watchCRC([]byte("born")) {
		t.Fatalf("creation not observed: changed=%v data=%q", changed, data)
	}
}

// TestWatchTimeoutClamp: the client clamps the server-side poll to half its
// call timeout so the reply beats the connection deadline.
func TestWatchTimeoutClamp(t *testing.T) {
	c, store := startNode(t)
	if err := vfs.WriteFile(store, "/head", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	pol := DefaultRetryPolicy()
	pol.CallTimeout = 200 * time.Millisecond
	c.SetRetryPolicy(pol)
	start := time.Now()
	_, _, changed, err := c.WatchFile("/head", watchCRC([]byte("v1")), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("unexpected change")
	}
	if e := time.Since(start); e > 150*time.Millisecond {
		t.Fatalf("clamped watch took %v (call timeout 200ms)", e)
	}
}
