// Package netsim models point-to-point network links between cluster nodes:
// a bandwidth, a per-message latency, and helpers to compute transfer times
// for striped parallel reads. The paper's cluster moves data over an
// InfiniBand-class fabric; the SSD server and fat node are local (no
// network hop).
package netsim

import "fmt"

// MB is one megabyte per second in bytes/second.
const MB = 1000 * 1000

// Link models a point-to-point connection.
type Link struct {
	Name       string
	Bandwidth  float64 // bytes/second
	LatencySec float64 // one-way message latency
}

// TransferTime returns the time for one message of n bytes.
func (l Link) TransferTime(n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative transfer %d", n))
	}
	return l.LatencySec + float64(n)/l.Bandwidth
}

// InfiniBand returns a QDR-class fabric link (~4 GB/s, microsecond latency).
func InfiniBand() Link {
	return Link{Name: "InfiniBand QDR", Bandwidth: 4000 * MB, LatencySec: 2e-6}
}

// TenGbE returns a 10-gigabit Ethernet link.
func TenGbE() Link {
	return Link{Name: "10GbE", Bandwidth: 1250 * MB, LatencySec: 50e-6}
}

// Local returns an effectively infinite link for same-node access.
func Local() Link {
	return Link{Name: "local", Bandwidth: 1e18, LatencySec: 0}
}

// StripedTransferTime models k servers each sending bytesPerServer over
// identical server links, funnelling into one client link: the elapsed time
// is the slower of (a) one server's share and (b) the client NIC draining
// the total.
func StripedTransferTime(serverLink, clientLink Link, bytesPerServer int64, k int) float64 {
	if k <= 0 {
		panic("netsim: striped transfer with no servers")
	}
	perServer := serverLink.TransferTime(bytesPerServer)
	total := clientLink.TransferTime(bytesPerServer * int64(k))
	if perServer > total {
		return perServer
	}
	return total
}
