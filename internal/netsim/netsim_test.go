package netsim

import (
	"math"
	"testing"
)

func TestTransferTime(t *testing.T) {
	l := Link{Bandwidth: 100 * MB, LatencySec: 0.001}
	if got := l.TransferTime(100 * MB); math.Abs(got-1.001) > 1e-9 {
		t.Errorf("TransferTime = %v", got)
	}
	if got := l.TransferTime(0); got != 0.001 {
		t.Errorf("zero-byte transfer = %v", got)
	}
}

func TestTransferNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative transfer should panic")
		}
	}()
	InfiniBand().TransferTime(-1)
}

func TestStripedTransferServerBound(t *testing.T) {
	// Slow server links, fast client: per-server share dominates.
	server := Link{Bandwidth: 10 * MB}
	client := Link{Bandwidth: 10000 * MB}
	got := StripedTransferTime(server, client, 10*MB, 4)
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("server-bound = %v, want 1.0", got)
	}
}

func TestStripedTransferClientBound(t *testing.T) {
	// Fast servers funnel into a slow client NIC.
	server := Link{Bandwidth: 10000 * MB}
	client := Link{Bandwidth: 10 * MB}
	got := StripedTransferTime(server, client, 10*MB, 4)
	if math.Abs(got-4.0) > 1e-9 {
		t.Errorf("client-bound = %v, want 4.0", got)
	}
}

func TestStripedTransferValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	StripedTransferTime(Local(), Local(), 1, 0)
}

func TestStandardLinks(t *testing.T) {
	if InfiniBand().Bandwidth <= TenGbE().Bandwidth {
		t.Error("InfiniBand should outrun 10GbE")
	}
	if Local().TransferTime(1<<40) > 1e-5 {
		t.Error("local transfers should be ~free")
	}
}
