package rangelist

import (
	"math/rand"
	"testing"
)

func BenchmarkAddFragmented(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	starts := make([]int, 1000)
	for i := range starts {
		starts[i] = rng.Intn(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := New()
		for _, s := range starts {
			l.Add(s, s+64)
		}
	}
}

func BenchmarkAppendSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := New()
		for k := 0; k < 1000; k++ {
			l.Append(k*100, k*100+60)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	l := New()
	for k := 0; k < 1000; k++ {
		l.Append(k*100, k*100+60)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Contains(i % 100000)
	}
}

func BenchmarkIntersect(b *testing.B) {
	a, c := New(), New()
	for k := 0; k < 1000; k++ {
		a.Append(k*100, k*100+60)
		c.Append(k*70, k*70+30)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Intersect(c)
	}
}
