package rangelist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddMerging(t *testing.T) {
	l := New()
	l.Add(5, 10)
	l.Add(20, 30)
	l.Add(10, 15) // touches first
	if got := l.String(); got != "5-15,20-30" {
		t.Errorf("after touch-merge: %s", got)
	}
	l.Add(12, 22) // bridges both
	if got := l.String(); got != "5-30" {
		t.Errorf("after bridge: %s", got)
	}
	l.Add(0, 2)
	l.Add(40, 41)
	if got := l.String(); got != "0-2,5-30,40-41" {
		t.Errorf("final: %s", got)
	}
	if l.Count() != 2+25+1 {
		t.Errorf("Count = %d", l.Count())
	}
}

func TestAddIgnoresEmpty(t *testing.T) {
	l := New()
	l.Add(5, 5)
	l.Add(7, 3)
	if l.NumRanges() != 0 {
		t.Errorf("NumRanges = %d, want 0", l.NumRanges())
	}
}

func TestAppend(t *testing.T) {
	l := New()
	l.Append(0, 3)
	l.Append(3, 6) // contiguous — extends
	l.Append(9, 12)
	if got := l.String(); got != "0-6,9-12" {
		t.Errorf("got %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append should panic")
		}
	}()
	l.Append(1, 2)
}

func TestContains(t *testing.T) {
	l := FromRanges(Range{2, 5}, Range{8, 10})
	for _, c := range []struct {
		i    int
		want bool
	}{{1, false}, {2, true}, {4, true}, {5, false}, {8, true}, {9, true}, {10, false}} {
		if got := l.Contains(c.i); got != c.want {
			t.Errorf("Contains(%d) = %v", c.i, got)
		}
	}
}

func TestIndicesAndEach(t *testing.T) {
	l := FromRanges(Range{1, 3}, Range{7, 9})
	want := []int{1, 2, 7, 8}
	got := l.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	var walked []int
	l.Each(func(i int) bool {
		walked = append(walked, i)
		return i != 7 // stop after 7
	})
	if len(walked) != 3 || walked[2] != 7 {
		t.Errorf("Each walked %v", walked)
	}
}

func TestIntersectUnionComplement(t *testing.T) {
	a := FromRanges(Range{0, 10}, Range{20, 30})
	b := FromRanges(Range{5, 25})
	if got := a.Intersect(b).String(); got != "5-10,20-25" {
		t.Errorf("Intersect = %s", got)
	}
	if got := a.Union(b).String(); got != "0-30" {
		t.Errorf("Union = %s", got)
	}
	if got := a.Complement(35).String(); got != "10-20,30-35" {
		t.Errorf("Complement = %s", got)
	}
	if got := New().Complement(3).String(); got != "0-3" {
		t.Errorf("empty Complement = %s", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	l := FromRanges(Range{0, 5}, Range{100, 250}, Range{999, 1000})
	got, err := Parse(l.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Errorf("round trip: %s != %s", got, l)
	}
	empty, err := Parse("")
	if err != nil || empty.NumRanges() != 0 {
		t.Errorf("Parse empty: %v, %v", empty, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"5", "a-b", "5-", "-5", "9-3", "1-2,x-y"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// membership is the reference model: a plain boolean set.
type membership map[int]bool

func (m membership) toList() *List {
	l := New()
	for i := 0; i < 2000; i++ {
		if m[i] {
			j := i
			for j < 2000 && m[j] {
				j++
			}
			l.Append(i, j)
			i = j
		}
	}
	return l
}

func TestQuickAgainstSetModel(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := membership{}
		l := New()
		for k := 0; k < int(nOps)%20+1; k++ {
			lo := rng.Intn(1000)
			hi := lo + rng.Intn(100)
			l.Add(lo, hi)
			for i := lo; i < hi; i++ {
				set[i] = true
			}
		}
		// Same membership everywhere.
		for i := 0; i < 1100; i++ {
			if l.Contains(i) != set[i] {
				return false
			}
		}
		// Normalized representation matches the model's canonical list.
		return l.Equal(set.toList()) && l.Count() == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() *List {
			l := New()
			for k := 0; k < rng.Intn(8); k++ {
				lo := rng.Intn(500)
				l.Add(lo, lo+rng.Intn(80))
			}
			return l
		}
		a, b := build(), build()
		inter := a.Intersect(b)
		union := a.Union(b)
		for i := 0; i < 600; i++ {
			if inter.Contains(i) != (a.Contains(i) && b.Contains(i)) {
				return false
			}
			if union.Contains(i) != (a.Contains(i) || b.Contains(i)) {
				return false
			}
		}
		// Complement is an involution over [0, 600).
		if !a.Complement(600).Complement(600).Equal(a) && a.Count() > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
