// Package rangelist provides ordered sets of half-open integer intervals.
//
// ADA's labeler (Algorithm 1 in the paper) represents each tag's atom
// membership as a list of [begin, end) index ranges over the atom order of
// the structure file. Range lists keep the label file compact — a GPCR
// system has hundreds of thousands of atoms but only a handful of
// contiguous category blocks.
package rangelist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Range is a half-open interval [Begin, End).
type Range struct {
	Begin, End int
}

// Len returns the number of integers covered.
func (r Range) Len() int { return r.End - r.Begin }

// Contains reports whether i lies in the range.
func (r Range) Contains(i int) bool { return i >= r.Begin && i < r.End }

// String formats the range as "begin-end".
func (r Range) String() string { return fmt.Sprintf("%d-%d", r.Begin, r.End) }

// List is an ordered, non-overlapping set of ranges.
type List struct {
	ranges []Range
}

// New returns an empty list.
func New() *List { return &List{} }

// FromRanges builds a normalized list from arbitrary ranges.
func FromRanges(rs ...Range) *List {
	l := New()
	for _, r := range rs {
		l.Add(r.Begin, r.End)
	}
	return l
}

// Add inserts [begin, end), merging with adjacent or overlapping ranges.
// Empty or inverted intervals are ignored.
func (l *List) Add(begin, end int) {
	if end <= begin {
		return
	}
	// Find insertion window: all ranges that overlap or touch [begin,end).
	i := sort.Search(len(l.ranges), func(k int) bool { return l.ranges[k].End >= begin })
	j := i
	for j < len(l.ranges) && l.ranges[j].Begin <= end {
		j++
	}
	if i < j {
		if l.ranges[i].Begin < begin {
			begin = l.ranges[i].Begin
		}
		if l.ranges[j-1].End > end {
			end = l.ranges[j-1].End
		}
	}
	merged := Range{begin, end}
	l.ranges = append(l.ranges[:i], append([]Range{merged}, l.ranges[j:]...)...)
}

// Append adds [begin, end) which must start at or after the current end of
// the list; it is the fast path for the labeler's sequential scan.
// It panics if the ranges are appended out of order.
func (l *List) Append(begin, end int) {
	if end <= begin {
		return
	}
	if n := len(l.ranges); n > 0 {
		last := &l.ranges[n-1]
		if begin < last.End {
			panic(fmt.Sprintf("rangelist: Append(%d,%d) before current end %d", begin, end, last.End))
		}
		if begin == last.End {
			last.End = end
			return
		}
	}
	l.ranges = append(l.ranges, Range{begin, end})
}

// Ranges returns the underlying ranges. The slice must not be modified.
func (l *List) Ranges() []Range { return l.ranges }

// NumRanges returns the number of distinct ranges.
func (l *List) NumRanges() int { return len(l.ranges) }

// Count returns the total number of integers covered.
func (l *List) Count() int {
	n := 0
	for _, r := range l.ranges {
		n += r.Len()
	}
	return n
}

// Contains reports whether i is covered by the list.
func (l *List) Contains(i int) bool {
	k := sort.Search(len(l.ranges), func(k int) bool { return l.ranges[k].End > i })
	return k < len(l.ranges) && l.ranges[k].Contains(i)
}

// Indices expands the list into a sorted slice of covered integers.
func (l *List) Indices() []int {
	out := make([]int, 0, l.Count())
	for _, r := range l.ranges {
		for i := r.Begin; i < r.End; i++ {
			out = append(out, i)
		}
	}
	return out
}

// Each calls fn for every covered integer in ascending order, stopping if
// fn returns false.
func (l *List) Each(fn func(i int) bool) {
	for _, r := range l.ranges {
		for i := r.Begin; i < r.End; i++ {
			if !fn(i) {
				return
			}
		}
	}
}

// Intersect returns the intersection of two lists.
func (l *List) Intersect(m *List) *List {
	out := New()
	i, j := 0, 0
	for i < len(l.ranges) && j < len(m.ranges) {
		a, b := l.ranges[i], m.ranges[j]
		lo, hi := max(a.Begin, b.Begin), min(a.End, b.End)
		if lo < hi {
			out.Append(lo, hi)
		}
		if a.End < b.End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Union returns the union of two lists.
func (l *List) Union(m *List) *List {
	out := New()
	for _, r := range l.ranges {
		out.Add(r.Begin, r.End)
	}
	for _, r := range m.ranges {
		out.Add(r.Begin, r.End)
	}
	return out
}

// Complement returns the covered gaps within [0, n).
func (l *List) Complement(n int) *List {
	out := New()
	prev := 0
	for _, r := range l.ranges {
		if r.Begin >= n {
			break
		}
		if r.Begin > prev {
			out.Append(prev, r.Begin)
		}
		if r.End > prev {
			prev = r.End
		}
	}
	if prev < n {
		out.Append(prev, n)
	}
	return out
}

// Equal reports whether two lists cover the same set.
func (l *List) Equal(m *List) bool {
	if len(l.ranges) != len(m.ranges) {
		return false
	}
	for i := range l.ranges {
		if l.ranges[i] != m.ranges[i] {
			return false
		}
	}
	return true
}

// String formats the list as "a-b,c-d,...".
func (l *List) String() string {
	parts := make([]string, len(l.ranges))
	for i, r := range l.ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Parse reads the String format back into a list.
func Parse(s string) (*List, error) {
	l := New()
	s = strings.TrimSpace(s)
	if s == "" {
		return l, nil
	}
	for _, part := range strings.Split(s, ",") {
		lohi := strings.SplitN(strings.TrimSpace(part), "-", 2)
		if len(lohi) != 2 {
			return nil, fmt.Errorf("rangelist: bad range %q", part)
		}
		lo, err := strconv.Atoi(lohi[0])
		if err != nil {
			return nil, fmt.Errorf("rangelist: bad begin in %q: %w", part, err)
		}
		hi, err := strconv.Atoi(lohi[1])
		if err != nil {
			return nil, fmt.Errorf("rangelist: bad end in %q: %w", part, err)
		}
		if hi < lo {
			return nil, fmt.Errorf("rangelist: inverted range %q", part)
		}
		l.Add(lo, hi)
	}
	return l, nil
}
