// Package trr implements the GROMACS TRR trajectory format: XDR-framed
// full-precision frames carrying positions and optionally velocities and
// forces, in nanometers. TRR is the lossless companion to XTC — simulation
// engines write TRR checkpoints while XTC holds the compressed analysis
// trajectory; ADA ingests either.
//
// The single-precision variant is implemented (GROMACS's default output).
package trr

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/xdr"
	"repro/internal/xtc"
)

// Magic opens every TRR frame.
const Magic = 1993

// versionTag is the format tag GROMACS writes after the magic.
const versionTag = "GMX_trn_file"

// ErrFormat is returned for malformed TRR streams.
var ErrFormat = errors.New("trr: malformed stream")

// Frame is one TRR frame: positions always, velocities and forces when the
// producer wrote them.
type Frame struct {
	Step       int32
	Time       float32
	Lambda     float32
	Box        [9]float32
	Coords     []xtc.Vec3
	Velocities []xtc.Vec3 // nil when absent
	Forces     []xtc.Vec3 // nil when absent
}

// NAtoms returns the atom count.
func (f *Frame) NAtoms() int { return len(f.Coords) }

// ToXTC converts the frame to the repository's common frame type
// (positions only).
func (f *Frame) ToXTC() *xtc.Frame {
	out := &xtc.Frame{
		Step:   f.Step,
		Time:   f.Time,
		Box:    f.Box,
		Coords: make([]xtc.Vec3, len(f.Coords)),
	}
	copy(out.Coords, f.Coords)
	return out
}

// FromXTC wraps a common frame as a TRR frame (positions only).
func FromXTC(f *xtc.Frame) *Frame {
	out := &Frame{Step: f.Step, Time: f.Time, Box: f.Box, Coords: make([]xtc.Vec3, len(f.Coords))}
	copy(out.Coords, f.Coords)
	return out
}

// Writer emits TRR frames.
type Writer struct {
	w       *bufio.Writer
	scratch *xdr.Writer
	frames  int
	bytes   int64
}

// NewWriter returns a TRR writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), scratch: xdr.NewWriter(4096)}
}

// Frames returns the number of frames written.
func (w *Writer) Frames() int { return w.frames }

// BytesWritten returns the encoded bytes emitted (after Flush).
func (w *Writer) BytesWritten() int64 { return w.bytes }

// vecBytes is the encoded size of a []Vec3 block in single precision.
func vecBytes(v []xtc.Vec3) int32 {
	return int32(len(v) * 3 * 4)
}

// WriteFrame appends one frame.
func (w *Writer) WriteFrame(f *Frame) error {
	if len(f.Velocities) != 0 && len(f.Velocities) != len(f.Coords) {
		return fmt.Errorf("trr: %d velocities for %d atoms", len(f.Velocities), len(f.Coords))
	}
	if len(f.Forces) != 0 && len(f.Forces) != len(f.Coords) {
		return fmt.Errorf("trr: %d forces for %d atoms", len(f.Forces), len(f.Coords))
	}
	s := w.scratch
	s.Reset()
	s.Int32(Magic)
	s.String(versionTag)
	s.Int32(0)                  // ir_size
	s.Int32(0)                  // e_size
	s.Int32(9 * 4)              // box_size (single precision)
	s.Int32(0)                  // vir_size
	s.Int32(0)                  // pres_size
	s.Int32(0)                  // top_size
	s.Int32(0)                  // sym_size
	s.Int32(vecBytes(f.Coords)) // x_size
	s.Int32(vecBytes(f.Velocities))
	s.Int32(vecBytes(f.Forces))
	s.Int32(int32(len(f.Coords)))
	s.Int32(f.Step)
	s.Int32(0) // nre
	s.Float32(f.Time)
	s.Float32(f.Lambda)
	for _, b := range f.Box {
		s.Float32(b)
	}
	writeVecs := func(vs []xtc.Vec3) {
		for _, v := range vs {
			s.Float32(v[0])
			s.Float32(v[1])
			s.Float32(v[2])
		}
	}
	writeVecs(f.Coords)
	writeVecs(f.Velocities)
	writeVecs(f.Forces)
	n, err := w.w.Write(s.Bytes())
	w.bytes += int64(n)
	if err != nil {
		return err
	}
	w.frames++
	return nil
}

// Flush drains the buffered writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes TRR frames sequentially.
type Reader struct {
	r        *bufio.Reader
	buf      []byte
	consumed int64
}

// NewReader returns a streaming TRR reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// BytesConsumed returns encoded bytes read so far.
func (r *Reader) BytesConsumed() int64 { return r.consumed }

func (r *Reader) read(n int) ([]byte, error) {
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	b := r.buf[:n]
	if _, err := io.ReadFull(r.r, b); err != nil {
		return nil, err
	}
	r.consumed += int64(n)
	return b, nil
}

// fixedHeaderLen covers magic + tag("GMX_trn_file" padded) + 13 int32s +
// 2 float32s: 4 + (4+12) + 13*4 + 8.
const fixedHeaderLen = 4 + 16 + 13*4 + 8

// ReadFrame decodes the next frame, returning io.EOF at stream end.
func (r *Reader) ReadFrame() (*Frame, error) {
	head, err := r.read(fixedHeaderLen)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	x := xdr.NewReader(head)
	if magic := x.Int32(); magic != Magic {
		return nil, fmt.Errorf("%w: magic %d", ErrFormat, magic)
	}
	if tag := x.String(); tag != versionTag {
		return nil, fmt.Errorf("%w: version tag %q", ErrFormat, tag)
	}
	// Block sizes in header order: ir, e, box, vir, pres, top, sym, x, v, f.
	var sizes [10]int32
	for i := range sizes {
		sizes[i] = x.Int32()
	}
	return r.finishFrame(x,
		sizes[0], sizes[1], sizes[2], sizes[3], sizes[4],
		sizes[5], sizes[6], sizes[7], sizes[8], sizes[9])
}

// finishFrame decodes the trailing header fields and payload blocks.
func (r *Reader) finishFrame(x *xdr.Reader, irSize, eSize, boxSize, virSize, presSize, topSize, symSize, xSize, vSize, fSize int32) (*Frame, error) {
	natoms := x.Int32()
	step := x.Int32()
	_ = x.Int32() // nre
	t := x.Float32()
	lambda := x.Float32()
	if err := x.Err(); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if natoms < 0 || natoms > 1<<28 {
		return nil, fmt.Errorf("%w: atom count %d", ErrFormat, natoms)
	}
	for _, sz := range []int32{irSize, eSize, virSize, presSize, topSize, symSize} {
		if sz != 0 {
			return nil, fmt.Errorf("%w: unsupported auxiliary block of %d bytes", ErrFormat, sz)
		}
	}
	checkVec := func(name string, sz int32) (bool, error) {
		switch sz {
		case 0:
			return false, nil
		case natoms * 12:
			return true, nil
		default:
			return false, fmt.Errorf("%w: %s block of %d bytes for %d atoms (double precision unsupported)",
				ErrFormat, name, sz, natoms)
		}
	}
	hasX, err := checkVec("x", xSize)
	if err != nil {
		return nil, err
	}
	if !hasX {
		return nil, fmt.Errorf("%w: frame without positions", ErrFormat)
	}
	hasV, err := checkVec("v", vSize)
	if err != nil {
		return nil, err
	}
	hasF, err := checkVec("f", fSize)
	if err != nil {
		return nil, err
	}

	f := &Frame{Step: step, Time: t, Lambda: lambda}
	if boxSize != 0 {
		if boxSize != 36 {
			return nil, fmt.Errorf("%w: box block of %d bytes", ErrFormat, boxSize)
		}
		b, err := r.read(36)
		if err != nil {
			return nil, unexpected(err)
		}
		bx := xdr.NewReader(b)
		for i := range f.Box {
			f.Box[i] = bx.Float32()
		}
	}
	readVecs := func(n int32) ([]xtc.Vec3, error) {
		raw, err := r.read(int(n) * 12)
		if err != nil {
			return nil, unexpected(err)
		}
		vx := xdr.NewReader(raw)
		out := make([]xtc.Vec3, n)
		for i := range out {
			out[i][0] = vx.Float32()
			out[i][1] = vx.Float32()
			out[i][2] = vx.Float32()
		}
		return out, vx.Err()
	}
	if f.Coords, err = readVecs(natoms); err != nil {
		return nil, err
	}
	if hasV {
		if f.Velocities, err = readVecs(natoms); err != nil {
			return nil, err
		}
	}
	if hasF {
		if f.Forces, err = readVecs(natoms); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ReadAll decodes every frame.
func (r *Reader) ReadAll() ([]*Frame, error) {
	var out []*Frame
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
