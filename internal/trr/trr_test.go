package trr

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xtc"
)

func makeFrame(rng *rand.Rand, natoms int, withV, withF bool) *Frame {
	f := &Frame{
		Step:   int32(rng.Intn(1 << 20)),
		Time:   rng.Float32() * 100,
		Lambda: rng.Float32(),
	}
	f.Box[0], f.Box[4], f.Box[8] = 8, 8, 8
	mk := func() []xtc.Vec3 {
		vs := make([]xtc.Vec3, natoms)
		for i := range vs {
			for d := 0; d < 3; d++ {
				vs[i][d] = float32(rng.Float64()*16 - 8)
			}
		}
		return vs
	}
	f.Coords = mk()
	if withV {
		f.Velocities = mk()
	}
	if withF {
		f.Forces = mk()
	}
	return f
}

func assertEqual(t *testing.T, want, got *Frame) {
	t.Helper()
	if got.Step != want.Step || got.Time != want.Time || got.Lambda != want.Lambda {
		t.Fatalf("metadata: got %d/%g/%g want %d/%g/%g",
			got.Step, got.Time, got.Lambda, want.Step, want.Time, want.Lambda)
	}
	if got.Box != want.Box {
		t.Fatalf("box differs")
	}
	check := func(name string, a, b []xtc.Vec3) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, b[i], a[i])
			}
		}
	}
	check("coords", want.Coords, got.Coords)
	check("velocities", want.Velocities, got.Velocities)
	check("forces", want.Forces, got.Forces)
}

func TestRoundTripVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, variant := range []struct {
		name         string
		withV, withF bool
	}{
		{"positions-only", false, false},
		{"with-velocities", true, false},
		{"with-forces", false, true},
		{"full", true, true},
	} {
		t.Run(variant.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			var frames []*Frame
			for i := 0; i < 4; i++ {
				f := makeFrame(rng, 50+i, variant.withV, variant.withF)
				frames = append(frames, f)
				if err := w.WriteFrame(f); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if w.Frames() != 4 || w.BytesWritten() != int64(buf.Len()) {
				t.Errorf("writer stats: %d frames, %d bytes (buf %d)",
					w.Frames(), w.BytesWritten(), buf.Len())
			}
			r := NewReader(&buf)
			got, err := r.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 {
				t.Fatalf("frames = %d", len(got))
			}
			for i := range frames {
				assertEqual(t, frames[i], got[i])
			}
		})
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8, withV bool) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := makeFrame(rng, int(n)%100+1, withV, false)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(fr); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadFrame()
		if err != nil {
			return false
		}
		if got.Step != fr.Step || len(got.Coords) != len(fr.Coords) {
			return false
		}
		for i := range fr.Coords {
			if got.Coords[i] != fr.Coords[i] {
				return false
			}
		}
		return (got.Velocities != nil) == withV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedVectorCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := makeFrame(rng, 10, true, false)
	f.Velocities = f.Velocities[:5]
	w := NewWriter(&bytes.Buffer{})
	if err := w.WriteFrame(f); err == nil {
		t.Error("mismatched velocity count should fail")
	}
}

func TestTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(makeFrame(rng, 40, false, false)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-8]))
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated: %v", err)
	}
}

func TestBadMagicAndTag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(makeFrame(rng, 10, false, false)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	raw := buf.Bytes()

	bad := append([]byte{}, raw...)
	bad[3] = 99 // corrupt magic
	if _, err := NewReader(bytes.NewReader(bad)).ReadFrame(); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: %v", err)
	}
	bad2 := append([]byte{}, raw...)
	bad2[10] ^= 0xff // corrupt the version tag
	if _, err := NewReader(bytes.NewReader(bad2)).ReadFrame(); !errors.Is(err, ErrFormat) {
		t.Errorf("bad tag: %v", err)
	}
}

func TestToFromXTC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := makeFrame(rng, 30, true, true)
	x := f.ToXTC()
	if x.NAtoms() != 30 || x.Step != f.Step || x.Time != f.Time {
		t.Errorf("ToXTC = %+v", x)
	}
	back := FromXTC(x)
	for i := range f.Coords {
		if back.Coords[i] != f.Coords[i] {
			t.Fatalf("coord %d differs", i)
		}
	}
	if back.Velocities != nil {
		t.Error("FromXTC should not invent velocities")
	}
	// Mutating the conversion must not touch the original.
	x.Coords[0][0] = 1e9
	if f.Coords[0][0] == 1e9 {
		t.Error("ToXTC shares storage")
	}
}

func TestBytesConsumed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteFrame(makeFrame(rng, 20, true, false)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if r.BytesConsumed() != int64(buf.Len()) {
		t.Errorf("BytesConsumed = %d, want %d", r.BytesConsumed(), buf.Len())
	}
}
