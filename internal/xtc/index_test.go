package xtc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// buildTrajectory returns an encoded stream plus the original frames.
func buildTrajectory(t *testing.T, frames int, compressed bool) ([]byte, []*Frame) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if !compressed {
		w = NewRawWriter(&buf)
	}
	var orig []*Frame
	for i := 0; i < frames; i++ {
		f := &Frame{
			Step:      int32(i),
			Time:      float32(i) * 2,
			Coords:    makeCluster(rng, 80+i, 5), // varying atom counts
			Precision: 1000,
		}
		orig = append(orig, f)
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), orig
}

func TestBuildIndexCompressed(t *testing.T) {
	raw, orig := buildTrajectory(t, 9, true)
	idx, err := BuildIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Frames() != 9 {
		t.Fatalf("Frames = %d", idx.Frames())
	}
	if idx.TotalBytes() != int64(len(raw)) {
		t.Errorf("TotalBytes = %d, want %d", idx.TotalBytes(), len(raw))
	}
	for i := range orig {
		if idx.NAtoms(i) != orig[i].NAtoms() {
			t.Errorf("frame %d natoms = %d, want %d", i, idx.NAtoms(i), orig[i].NAtoms())
		}
	}
	// Offsets strictly increase and sizes are positive.
	for i := 1; i < idx.Frames(); i++ {
		if idx.Offset(i) != idx.Offset(i-1)+idx.Size(i-1) {
			t.Errorf("frame %d offset %d not contiguous", i, idx.Offset(i))
		}
	}
}

func TestRandomAccessReader(t *testing.T) {
	for _, compressed := range []bool{true, false} {
		raw, orig := buildTrajectory(t, 7, compressed)
		idx, err := BuildIndex(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		ra := NewRandomAccessReader(bytes.NewReader(raw), idx)
		// Access out of order, repeatedly.
		order := []int{3, 0, 6, 3, 1, 5, 2, 4, 6}
		for _, i := range order {
			f, err := ra.ReadFrameAt(i)
			if err != nil {
				t.Fatalf("compressed=%v frame %d: %v", compressed, i, err)
			}
			if f.Step != orig[i].Step || f.NAtoms() != orig[i].NAtoms() {
				t.Fatalf("compressed=%v frame %d: step=%d natoms=%d", compressed, i, f.Step, f.NAtoms())
			}
		}
		if _, err := ra.ReadFrameAt(-1); err == nil {
			t.Error("negative frame should fail")
		}
		if _, err := ra.ReadFrameAt(7); err == nil {
			t.Error("past-end frame should fail")
		}
	}
}

func TestBuildIndexErrors(t *testing.T) {
	raw, _ := buildTrajectory(t, 3, true)
	// Truncated stream.
	if _, err := BuildIndex(bytes.NewReader(raw[:len(raw)-4]), int64(len(raw)-4)); err == nil {
		t.Error("truncated stream should fail")
	}
	// Bad magic.
	bad := append([]byte{9, 9, 9, 9}, raw...)
	if _, err := BuildIndex(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Empty stream indexes cleanly.
	idx, err := BuildIndex(bytes.NewReader(nil), 0)
	if err != nil || idx.Frames() != 0 || idx.TotalBytes() != 0 {
		t.Errorf("empty: %v, %d frames", err, idx.Frames())
	}
}

func TestIndexAgreesWithSequentialReader(t *testing.T) {
	raw, _ := buildTrajectory(t, 12, true)
	idx, err := BuildIndex(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	ra := NewRandomAccessReader(bytes.NewReader(raw), idx)
	if ra.Frames() != len(seq) {
		t.Fatalf("frames = %d vs %d", ra.Frames(), len(seq))
	}
	for i := range seq {
		f, err := ra.ReadFrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		for a := range f.Coords {
			if f.Coords[a] != seq[i].Coords[a] {
				t.Fatalf("frame %d atom %d differs between access paths", i, a)
			}
		}
	}
}
