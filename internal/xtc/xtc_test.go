package xtc

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xdr"
)

func TestSizeOfInt(t *testing.T) {
	cases := []struct {
		size uint32
		want uint
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{255, 8}, {256, 8}, {257, 9}, {1 << 24, 24}, {1<<24 + 1, 25},
	}
	for _, c := range cases {
		if got := sizeOfInt(c.size); got != c.want {
			t.Errorf("sizeOfInt(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSizeOfInts(t *testing.T) {
	// Product of sizes needs ceil(log2(product)) bits.
	cases := [][3]uint32{
		{8, 8, 8}, {10, 10, 10}, {255, 3, 7}, {1 << 20, 1 << 20, 1 << 20},
		{1, 1, 1}, {16777216, 16777216, 16777216},
	}
	for _, sizes := range cases {
		got := sizeOfInts(sizes[:])
		product := float64(sizes[0]) * float64(sizes[1]) * float64(sizes[2])
		want := uint(math.Ceil(math.Log2(product)))
		if product == 1 {
			want = 0
		}
		// sizeOfInts may be at most 1 bit looser than the information bound
		// (it rounds within its top byte), never tighter.
		if got < want || got > want+1 {
			t.Errorf("sizeOfInts(%v) = %d, want ~%d", sizes, got, want)
		}
	}
}

func TestPackUnpackInts(t *testing.T) {
	sizes := []uint32{1000, 2000, 3000}
	nbits := sizeOfInts(sizes)
	w := xdr.NewBitWriter(64)
	vals := [][]uint32{
		{0, 0, 0}, {999, 1999, 2999}, {1, 2, 3}, {500, 1000, 1500},
	}
	for _, v := range vals {
		packInts(w, nbits, sizes, v)
	}
	r := xdr.NewBitReader(w.Bytes())
	for _, v := range vals {
		var got [3]uint32
		unpackInts(r, nbits, sizes, got[:])
		for d := 0; d < 3; d++ {
			if got[d] != v[d] {
				t.Fatalf("unpack %v = %v", v, got)
			}
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestPackUnpackIntsQuick(t *testing.T) {
	f := func(s0, s1, s2 uint32, v0, v1, v2 uint32) bool {
		sizes := []uint32{s0%0xffffff + 1, s1%0xffffff + 1, s2%0xffffff + 1}
		vals := []uint32{v0 % sizes[0], v1 % sizes[1], v2 % sizes[2]}
		nbits := sizeOfInts(sizes)
		w := xdr.NewBitWriter(32)
		packInts(w, nbits, sizes, vals)
		r := xdr.NewBitReader(w.Bytes())
		var got [3]uint32
		unpackInts(r, nbits, sizes, got[:])
		return got[0] == vals[0] && got[1] == vals[1] && got[2] == vals[2] && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// makeCluster builds a water-box-like set of coordinates: clusters of a few
// atoms around slowly varying centers, which is what the delta coder is
// designed for.
func makeCluster(rng *rand.Rand, natoms int, spread float64) []Vec3 {
	coords := make([]Vec3, natoms)
	var center [3]float64
	for i := range coords {
		if i%3 == 0 {
			for d := 0; d < 3; d++ {
				center[d] = rng.Float64() * spread
			}
		}
		for d := 0; d < 3; d++ {
			coords[i][d] = float32(center[d] + rng.NormFloat64()*0.05)
		}
	}
	return coords
}

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	w := xdr.NewWriter(1024)
	if err := f.AppendEncoded(w); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFrame(xdr.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func assertClose(t *testing.T, want, got *Frame, tol float64) {
	t.Helper()
	if got.NAtoms() != want.NAtoms() {
		t.Fatalf("natoms = %d, want %d", got.NAtoms(), want.NAtoms())
	}
	if got.Step != want.Step || got.Time != want.Time {
		t.Fatalf("step/time = %d/%g, want %d/%g", got.Step, got.Time, want.Step, want.Time)
	}
	for i := range want.Coords {
		for d := 0; d < 3; d++ {
			diff := math.Abs(float64(got.Coords[i][d]) - float64(want.Coords[i][d]))
			if diff > tol {
				t.Fatalf("atom %d dim %d: got %g want %g (diff %g > tol %g)",
					i, d, got.Coords[i][d], want.Coords[i][d], diff, tol)
			}
		}
	}
}

func TestFrameRoundTripClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, natoms := range []int{10, 50, 333, 2048} {
		f := &Frame{
			Step:      7,
			Time:      12.5,
			Coords:    makeCluster(rng, natoms, 10),
			Precision: 1000,
		}
		got := roundTrip(t, f)
		assertClose(t, f, got, MaxError(1000)+1e-6)
	}
}

func TestFrameRoundTripUniformRandom(t *testing.T) {
	// Worst case for the delta coder: no spatial correlation at all.
	rng := rand.New(rand.NewSource(2))
	coords := make([]Vec3, 500)
	for i := range coords {
		for d := 0; d < 3; d++ {
			coords[i][d] = float32(rng.Float64()*200 - 100)
		}
	}
	f := &Frame{Coords: coords, Precision: 1000}
	got := roundTrip(t, f)
	assertClose(t, f, got, MaxError(1000)+1e-4)
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16, precPow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		natoms := int(n)%300 + 1
		prec := float32(math.Pow(10, float64(precPow%4+1))) // 10..10000
		fr := &Frame{Coords: makeCluster(rng, natoms, 5), Precision: prec}
		w := xdr.NewWriter(1024)
		if err := fr.AppendEncoded(w); err != nil {
			return false
		}
		got, err := DecodeFrame(xdr.NewReader(w.Bytes()))
		if err != nil {
			return false
		}
		tol := MaxError(prec) + 1e-6
		for i := range fr.Coords {
			for d := 0; d < 3; d++ {
				if math.Abs(float64(got.Coords[i][d])-float64(fr.Coords[i][d])) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyFrames(t *testing.T) {
	for natoms := 0; natoms <= smallAtomThreshold; natoms++ {
		coords := make([]Vec3, natoms)
		for i := range coords {
			coords[i] = Vec3{float32(i), float32(-i), 0.5}
		}
		f := &Frame{Coords: coords, Precision: 1000}
		got := roundTrip(t, f)
		// Tiny frames are stored as exact floats.
		for i := range coords {
			if got.Coords[i] != coords[i] {
				t.Fatalf("natoms=%d atom %d: %v != %v", natoms, i, got.Coords[i], coords[i])
			}
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := &Frame{Step: 3, Time: 1.5, Coords: makeCluster(rng, 100, 5)}
	w := xdr.NewWriter(2048)
	f.AppendRaw(w)
	got, err := DecodeFrame(xdr.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Coords {
		if got.Coords[i] != f.Coords[i] {
			t.Fatalf("atom %d: %v != %v", i, got.Coords[i], f.Coords[i])
		}
	}
}

func TestCompressionBeatsRawOnCorrelatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := &Frame{Coords: makeCluster(rng, 3000, 8), Precision: 1000}
	cw := xdr.NewWriter(1 << 16)
	if err := f.AppendEncoded(cw); err != nil {
		t.Fatal(err)
	}
	rw := xdr.NewWriter(1 << 16)
	f.AppendRaw(rw)
	ratio := CompressionRatio(int64(rw.Len()), int64(cw.Len()))
	if ratio < 2 {
		t.Errorf("compression ratio = %.2f, want >= 2 on clustered data", ratio)
	}
	t.Logf("compressed %d bytes, raw %d bytes, ratio %.2fx", cw.Len(), rw.Len(), ratio)
}

func TestPrecisionOverflow(t *testing.T) {
	f := &Frame{
		Coords:    make([]Vec3, 20),
		Precision: 1e9,
	}
	for i := range f.Coords {
		f.Coords[i] = Vec3{1e6, 0, 0}
	}
	w := xdr.NewWriter(1024)
	err := f.AppendEncoded(w)
	if !errors.Is(err, ErrPrecision) {
		t.Errorf("err = %v, want ErrPrecision", err)
	}
}

func TestStreamWriterReader(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []*Frame
	for i := 0; i < 17; i++ {
		f := &Frame{
			Step:      int32(i * 100),
			Time:      float32(i) * 2,
			Coords:    makeCluster(rng, 120, 6),
			Precision: 1000,
		}
		want = append(want, f)
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Frames() != 17 {
		t.Errorf("Frames = %d", w.Frames())
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buf = %d", w.BytesWritten(), buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("frames = %d, want %d", len(got), len(want))
	}
	for i := range want {
		assertClose(t, want[i], got[i], MaxError(1000)+1e-6)
	}
}

func TestStreamMixedCompressedRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var buf bytes.Buffer
	cw := NewWriter(&buf)
	rw := NewRawWriter(&buf)
	f1 := &Frame{Step: 1, Coords: makeCluster(rng, 64, 4), Precision: 1000}
	f2 := &Frame{Step: 2, Coords: makeCluster(rng, 64, 4)}
	if err := cw.WriteFrame(f1); err != nil {
		t.Fatal(err)
	}
	if err := rw.WriteFrame(f2); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	g1, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Step != 1 || g2.Step != 2 {
		t.Errorf("steps = %d, %d", g1.Step, g2.Step)
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestStreamTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	f := &Frame{Coords: makeCluster(rng, 128, 4), Precision: 1000}
	if err := w.WriteFrame(f); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	r := NewReader(bytes.NewReader(trunc))
	_, err := r.ReadFrame()
	if err != io.ErrUnexpectedEOF {
		t.Errorf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestStreamBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0, 0, 99, 0, 0, 0, 0}))
	_, err := r.ReadFrame()
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestSubset(t *testing.T) {
	f := &Frame{Coords: []Vec3{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}}}
	g, err := f.Subset([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NAtoms() != 2 || g.Coords[0] != (Vec3{1, 1, 1}) || g.Coords[1] != (Vec3{3, 3, 3}) {
		t.Errorf("subset = %v", g.Coords)
	}
	if _, err := f.Subset([]int{4}); err == nil {
		t.Error("out-of-range subset index should fail")
	}
	if _, err := f.Subset([]int{-1}); err == nil {
		t.Error("negative subset index should fail")
	}
}

func TestClone(t *testing.T) {
	f := &Frame{Step: 9, Coords: []Vec3{{1, 2, 3}}}
	g := f.Clone()
	g.Coords[0][0] = 99
	if f.Coords[0][0] != 1 {
		t.Error("Clone shares coordinate storage")
	}
}

func TestDecodeCorruptRunField(t *testing.T) {
	// Craft a compressed frame and corrupt the blob so the run claims more
	// atoms than remain.
	rng := rand.New(rand.NewSource(8))
	f := &Frame{Coords: makeCluster(rng, 40, 4), Precision: 1000}
	w := xdr.NewWriter(4096)
	if err := f.AppendEncoded(w); err != nil {
		t.Fatal(err)
	}
	raw := w.Bytes()
	// Flip bits across the tail of the blob; decoding must fail or return
	// a frame (never panic or loop).
	for i := len(raw) - 8; i < len(raw); i++ {
		mut := make([]byte, len(raw))
		copy(mut, raw)
		mut[i] ^= 0xff
		_, _ = DecodeFrame(xdr.NewReader(mut))
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	f := &Frame{Coords: makeCluster(rng, 10000, 10), Precision: 1000}
	w := xdr.NewWriter(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := f.AppendEncoded(w); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(f.NAtoms() * 12))
}

func BenchmarkDecodeFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	f := &Frame{Coords: makeCluster(rng, 10000, 10), Precision: 1000}
	w := xdr.NewWriter(1 << 20)
	if err := f.AppendEncoded(w); err != nil {
		b.Fatal(err)
	}
	raw := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(xdr.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(f.NAtoms() * 12))
}
