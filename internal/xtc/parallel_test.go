package xtc

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// mixedStream interleaves compressed and raw frames (plus one small-atom
// compressed frame, which the codec stores uncompressed inside a compressed
// envelope) into a single stream, exercising every framing path the scanner
// knows.
func mixedStream(t *testing.T, frames int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	cw := NewWriter(&buf)
	rw := NewRawWriter(&buf)
	for k := 0; k < frames; k++ {
		natoms := 30 + rng.Intn(20)
		if k == frames/2 {
			natoms = smallAtomThreshold // small system: raw-inside-compressed path
		}
		coords := make([]Vec3, natoms)
		for i := range coords {
			coords[i] = Vec3{rng.Float32() * 5, rng.Float32() * 5, rng.Float32() * 5}
		}
		f := &Frame{Step: int32(k), Time: float32(k) * 0.5, Precision: 1000, Coords: coords}
		w := cw
		if k%3 == 2 {
			w = rw
		}
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func framesEqual(t *testing.T, got, want []*Frame) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("frame count %d, want %d", len(got), len(want))
	}
	for k := range want {
		g, w := got[k], want[k]
		if g.Step != w.Step || g.Time != w.Time || g.Precision != w.Precision ||
			g.Box != w.Box || len(g.Coords) != len(w.Coords) {
			t.Fatalf("frame %d header mismatch: %+v vs %+v", k, g, w)
		}
		for i := range w.Coords {
			if g.Coords[i] != w.Coords[i] {
				t.Fatalf("frame %d atom %d: %v != %v", k, i, g.Coords[i], w.Coords[i])
			}
		}
	}
}

// TestParallelReaderMatchesSerial: byte-identical semantics at every worker
// count, including more workers than frames.
func TestParallelReaderMatchesSerial(t *testing.T) {
	stream := mixedStream(t, 9)
	want, err := NewReader(bytes.NewReader(stream)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 9 {
		t.Fatalf("serial read %d frames", len(want))
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		pr := NewParallelReader(bytes.NewReader(stream), workers)
		got, err := pr.ReadAll()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		framesEqual(t, got, want)
		if pr.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", pr.Workers(), workers)
		}
		pr.Close()
	}
}

// TestParallelReaderFrameSizes: per-frame encoded sizes sum to the stream
// length (the feed into virtual-time decompression charging).
func TestParallelReaderFrameSizes(t *testing.T) {
	stream := mixedStream(t, 6)
	pr := NewParallelReader(bytes.NewReader(stream), 2)
	defer pr.Close()
	var total int64
	for {
		_, size, err := pr.ReadFrameSize()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if size <= 0 {
			t.Fatalf("non-positive frame size %d", size)
		}
		total += size
	}
	if total != int64(len(stream)) {
		t.Errorf("frame sizes sum to %d, stream is %d bytes", total, len(stream))
	}
}

// TestParallelReaderEmptyStream: immediate clean EOF, and EOF is sticky.
func TestParallelReaderEmptyStream(t *testing.T) {
	pr := NewParallelReader(bytes.NewReader(nil), 4)
	defer pr.Close()
	if frames, err := pr.ReadAll(); err != nil || len(frames) != 0 {
		t.Fatalf("empty stream: %d frames, %v", len(frames), err)
	}
	for k := 0; k < 3; k++ {
		if _, err := pr.ReadFrame(); err != io.EOF {
			t.Fatalf("read %d after EOF: %v, want io.EOF", k, err)
		}
	}
}

// TestParallelReaderStickyEOF: after the stream ends, every further read
// returns io.EOF, matching the serial Reader.
func TestParallelReaderStickyEOF(t *testing.T) {
	stream := mixedStream(t, 4)
	pr := NewParallelReader(bytes.NewReader(stream), 2)
	defer pr.Close()
	if frames, err := pr.ReadAll(); err != nil || len(frames) != 4 {
		t.Fatalf("%d frames, %v", len(frames), err)
	}
	if _, err := pr.ReadFrame(); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
}

// TestParallelReaderCloseMidStream: Close with frames still queued must not
// deadlock, and later reads fail cleanly.
func TestParallelReaderCloseMidStream(t *testing.T) {
	stream := mixedStream(t, 12)
	pr := NewParallelReader(bytes.NewReader(stream), 2)
	if _, err := pr.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	pr.Close()
	pr.Close() // idempotent
	if _, err := pr.ReadFrame(); err == nil {
		t.Fatal("read after Close succeeded")
	}
}

// TestParallelReaderCloseUnstarted: closing before any read is legal.
func TestParallelReaderCloseUnstarted(t *testing.T) {
	pr := NewParallelReader(bytes.NewReader(mixedStream(t, 2)), 2)
	pr.Close()
	if _, err := pr.ReadFrame(); err == nil {
		t.Fatal("read after Close succeeded")
	}
}

// TestParallelReaderWorkerBusy: with enough frames, decode time lands on the
// workers and is visible through WorkerBusy.
func TestParallelReaderWorkerBusy(t *testing.T) {
	stream := mixedStream(t, 16)
	pr := NewParallelReader(bytes.NewReader(stream), 2)
	defer pr.Close()
	if _, err := pr.ReadAll(); err != nil {
		t.Fatal(err)
	}
	busy := pr.WorkerBusy()
	if len(busy) != 2 {
		t.Fatalf("WorkerBusy len %d", len(busy))
	}
	var total int64
	for _, d := range busy {
		total += int64(d)
	}
	if total <= 0 {
		t.Error("no decode time recorded on any worker")
	}
}

// TestParallelReaderObserve: the per-decode hook fires once per frame.
func TestParallelReaderObserve(t *testing.T) {
	stream := mixedStream(t, 5)
	pr := NewParallelReader(bytes.NewReader(stream), 1)
	defer pr.Close()
	var calls int64
	pr.Observe = func(ns int64) { calls++ } // 1 worker: no data race
	if frames, err := pr.ReadAll(); err != nil || len(frames) != 5 {
		t.Fatalf("%d frames, %v", len(frames), err)
	}
	if calls != 5 {
		t.Errorf("Observe fired %d times, want 5", calls)
	}
}

// TestParallelReaderBatchEquivalence sweeps the batch-size target against
// worker counts: single-frame batches, a few frames per batch, many frames,
// and a target larger than the whole stream (which then hits the
// maxBatchFrames cap — the stream is longer than one maximal batch). Every
// combination must be frame-for-frame identical to the serial Reader.
func TestParallelReaderBatchEquivalence(t *testing.T) {
	stream := mixedStream(t, maxBatchFrames+33)
	want, err := NewReader(bytes.NewReader(stream)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, batchBytes := range []int{1, 300, 4096, 1 << 30} {
		for _, workers := range []int{1, 2, 3, 8} {
			pr := NewParallelReader(bytes.NewReader(stream), workers)
			pr.BatchBytes = batchBytes
			got, err := pr.ReadAll()
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batchBytes, workers, err)
			}
			framesEqual(t, got, want)
			pr.Close()
		}
	}
}

// TestParallelReaderPendingBounded: the out-of-order re-sequencing buffer
// must stay bounded by the in-flight item count (work + results channel
// capacities), not grow with the stream.
func TestParallelReaderPendingBounded(t *testing.T) {
	const workers = 8
	stream := mixedStream(t, 90)
	pr := NewParallelReader(bytes.NewReader(stream), workers)
	pr.BatchBytes = 1 // one frame per batch: maximal re-sequencing pressure
	defer pr.Close()
	if _, err := pr.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if limit := 2*workers + 1; pr.maxPending > limit {
		t.Errorf("pending re-sequencing buffer reached %d entries, bound is %d",
			pr.maxPending, limit)
	}
}

// TestParallelReaderFrameSizesBatched: per-frame encoded sizes survive
// batching — they sum to the stream length at every batch-size target.
func TestParallelReaderFrameSizesBatched(t *testing.T) {
	stream := mixedStream(t, 20)
	for _, batchBytes := range []int{1, 500, 1 << 30} {
		pr := NewParallelReader(bytes.NewReader(stream), 3)
		pr.BatchBytes = batchBytes
		var total int64
		for {
			_, size, err := pr.ReadFrameSize()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			total += size
		}
		if total != int64(len(stream)) {
			t.Errorf("batch=%d: frame sizes sum to %d, stream is %d bytes",
				batchBytes, total, len(stream))
		}
		pr.Close()
	}
}

// TestParallelReaderCloseMidStreamBatched closes the reader while workers
// are mid-batch, at several batch sizes, with a concurrent WorkerBusy poller
// (documented safe at any point). Run under -race this is the shutdown
// data-race check for the batched pipeline.
func TestParallelReaderCloseMidStreamBatched(t *testing.T) {
	stream := mixedStream(t, 60)
	for _, batchBytes := range []int{1, 700, 1 << 30} {
		pr := NewParallelReader(bytes.NewReader(stream), 4)
		pr.BatchBytes = batchBytes
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 100; i++ {
				pr.WorkerBusy()
			}
		}()
		for i := 0; i < 3; i++ {
			if _, err := pr.ReadFrame(); err != nil {
				t.Fatalf("batch=%d frame %d: %v", batchBytes, i, err)
			}
		}
		pr.Close()
		pr.Close() // idempotent
		<-done
		if _, err := pr.ReadFrame(); err == nil {
			t.Fatalf("batch=%d: read after Close succeeded", batchBytes)
		}
	}
}

// TestDecodeAllocsSteadyState asserts the ingest path is zero-copy in the
// steady state: scanner bytes land in one pooled blob, decode scratch comes
// from pools, and the only per-frame heap traffic left is the Frame and its
// Coords (plus amortized slice growth) — about 3 allocations per frame
// serial and under 5 with the batched pool (batch slices and channel items
// amortize across maxBatchFrames).
func TestDecodeAllocsSteadyState(t *testing.T) {
	const frames = 64
	stream := mixedStream(t, frames)
	serial := func() {
		if _, err := NewReader(bytes.NewReader(stream)).ReadAll(); err != nil {
			t.Fatal(err)
		}
	}
	serial() // warm the pools
	if per := testing.AllocsPerRun(10, serial) / frames; per > 3.5 {
		t.Errorf("serial decode: %.2f allocs/frame, want <= 3.5", per)
	}
	parallel := func() {
		pr := NewParallelReader(bytes.NewReader(stream), 2)
		if _, err := pr.ReadAll(); err != nil {
			t.Fatal(err)
		}
		pr.Close()
	}
	parallel()
	if per := testing.AllocsPerRun(10, parallel) / frames; per > 5 {
		t.Errorf("parallel decode: %.2f allocs/frame, want <= 5", per)
	}
}

// TestDefaultWorkers pins the selection rule: positive passes through,
// non-positive derives from the machine but never below 1.
func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(3); got != 3 {
		t.Errorf("DefaultWorkers(3) = %d", got)
	}
	if got := DefaultWorkers(0); got < 1 {
		t.Errorf("DefaultWorkers(0) = %d", got)
	}
	if got := DefaultWorkers(-5); got < 1 {
		t.Errorf("DefaultWorkers(-5) = %d", got)
	}
}
