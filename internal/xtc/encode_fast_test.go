package xtc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xdr"
)

// TestPackIntsFastMatchesBig pins the two-multiply fast path to the byte-wise
// multi-precision arithmetic it replaced: for every triplet whose combined
// width fits 64 bits, packInts and packIntsBig must emit identical bytes.
// packIntsBig is the pre-optimization encoder, so this is a semantic lock on
// the fused path.
func TestPackIntsFastMatchesBig(t *testing.T) {
	f := func(s0, s1, s2, v0, v1, v2 uint32) bool {
		sizes := []uint32{s0%0xffffff + 1, s1%0xffffff + 1, s2%0xffffff + 1}
		vals := []uint32{v0 % sizes[0], v1 % sizes[1], v2 % sizes[2]}
		nbits := sizeOfInts(sizes)
		if nbits > 64 {
			return true // fast path not eligible; other tests cover big
		}
		fast := xdr.NewBitWriter(32)
		fast.WriteBits(0b1, 1) // misalign on purpose
		packInts(fast, nbits, sizes, vals)
		big := xdr.NewBitWriter(32)
		big.WriteBits(0b1, 1)
		packIntsBig(big, nbits, sizes, vals)
		return bytes.Equal(fast.Bytes(), big.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// spreadFrame builds a frame whose quantized bounding box is tuned to force a
// specific encoder layout (see TestEncodeLayoutsRoundTrip).
func spreadFrame(rng *rand.Rand, natoms int, spread float64) *Frame {
	coords := make([]Vec3, natoms)
	var center [3]float64
	for i := range coords {
		if i%4 == 0 {
			for d := 0; d < 3; d++ {
				center[d] = (rng.Float64() - 0.5) * spread
			}
		}
		for d := 0; d < 3; d++ {
			coords[i][d] = float32(center[d] + rng.NormFloat64()*0.05)
		}
	}
	return &Frame{Step: 3, Time: 0.5, Coords: coords, Precision: 1000}
}

// TestEncodeLayoutsRoundTrip drives every absolute-coding layout the encoder
// can pick, so each write path (fused <=64-bit triplet, >64-bit packIntsBig,
// and the per-dimension raw-width path for >24-bit boxes) round-trips against
// the shared decoder.
func TestEncodeLayoutsRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		spread float64 // nm; quantized span ~ spread*1000 counts
	}{
		// span ~2^13: absolute triplets fit well under 64 bits (fused path).
		{"tiny-box-fused", 8},
		// span ~2^23 per dim: sizes are under 2^24 so the triplet layout is
		// chosen, but the combined width is ~70 bits — packIntsBig absolutes.
		{"mid-box-bignum", 8000},
		// span ~2^25 per dim: beyond the 24-bit triplet limit, so each
		// dimension is written with its own raw bit width; the huge deltas
		// also push the run coder to its widest (72-bit) packIntsBig layout.
		{"huge-box-perdim", 33000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for _, natoms := range []int{11, 64, 500} {
				f := spreadFrame(rng, natoms, tc.spread)
				got := roundTrip(t, f)
				// Beyond the quantization error, float32 storage of large
				// coordinates loses up to one ULP (~|coord| * 2^-23).
				tol := MaxError(f.Precision) + tc.spread*1.3e-7 + 1e-6
				assertClose(t, f, got, tol)
			}
		})
	}
}

// TestEncodeLayoutsRoundTripQuick fuzzes box spans across the fused and
// big-number layout boundary and requires exact quantized-value recovery,
// which is stricter than the float tolerance check: encode, decode,
// re-encode must agree byte-for-byte. (Spans are capped at 8192 nm: beyond
// ~2^22 counts, float32 coordinate storage itself loses low bits, so exact
// idempotence is no longer the codec's contract.)
func TestEncodeLayoutsRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8, spreadPow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		natoms := int(n)%200 + smallAtomThreshold + 1
		spread := math.Pow(2, float64(spreadPow%11)+3) // 8 .. 8192 nm
		fr := spreadFrame(rng, natoms, spread)
		w := xdr.NewWriter(1 << 16)
		if err := fr.AppendEncoded(w); err != nil {
			return false
		}
		first := append([]byte(nil), w.Bytes()...)
		got, err := DecodeFrame(xdr.NewReader(first))
		if err != nil {
			return false
		}
		w.Reset()
		if err := got.AppendEncoded(w); err != nil {
			return false
		}
		// Decoded coords quantize back to the same integers, so the second
		// encoding must reproduce the first bit stream exactly.
		return bytes.Equal(first, w.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeAllocsSteadyState bounds the per-frame allocation count of the
// encode hot path: with a reused xdr.Writer, steady-state AppendEncoded must
// cost at most one allocation per frame (pool churn), matching the
// wire-speed-ingest acceptance bar.
func TestEncodeAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := spreadFrame(rng, 2000, 10)
	w := xdr.NewWriter(1 << 16)
	// Warm the pools.
	for i := 0; i < 4; i++ {
		w.Reset()
		if err := f.AppendEncoded(w); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		w.Reset()
		if err := f.AppendEncoded(w); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("AppendEncoded steady state = %.2f allocs/frame, want <= 1", avg)
	}
}

func TestSubsetInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := spreadFrame(rng, 100, 10)
	idx := []int{0, 7, 42, 99, 7}

	var dst Frame
	if err := f.SubsetInto(idx, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Step != f.Step || dst.Time != f.Time || dst.Precision != f.Precision || dst.Box != f.Box {
		t.Error("SubsetInto did not copy frame metadata")
	}
	for i, a := range idx {
		if dst.Coords[i] != f.Coords[a] {
			t.Fatalf("coord %d: got %v, want %v", i, dst.Coords[i], f.Coords[a])
		}
	}

	// Shrinking reuse: a smaller subset into the same dst must reuse the
	// backing array and not allocate.
	small := idx[:2]
	avg := testing.AllocsPerRun(20, func() {
		if err := f.SubsetInto(small, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("SubsetInto reuse = %.2f allocs, want 0", avg)
	}
	if len(dst.Coords) != len(small) {
		t.Errorf("len = %d, want %d", len(dst.Coords), len(small))
	}

	// Out-of-range indices error.
	for _, bad := range [][]int{{-1}, {100}, {0, 1, 1000}} {
		if err := f.SubsetInto(bad, &dst); err == nil {
			t.Errorf("SubsetInto(%v) did not error", bad)
		}
	}

	// Subset delegates and matches.
	g, err := f.Subset(idx)
	if err != nil {
		t.Fatal(err)
	}
	var h Frame
	if err := f.SubsetInto(idx, &h); err != nil {
		t.Fatal(err)
	}
	for i := range g.Coords {
		if g.Coords[i] != h.Coords[i] {
			t.Fatalf("Subset and SubsetInto disagree at %d", i)
		}
	}
}
