package xtc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Scanner walks a concatenated frame stream and yields each frame's complete
// encoded bytes *without* decoding coordinates. Framing needs only the magic,
// the atom count, and (for large compressed frames) the blob length, so a
// scan is orders of magnitude cheaper than a decode — which is what lets
// ParallelReader decouple cheap framing from expensive decompression and fan
// the decode out across cores.
type Scanner struct {
	br     *bufio.Reader
	buf    []byte
	natoms int
	frames int
}

// NewScanner returns a Scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// fill extends buf by n bytes read from the stream. On a read error the
// buffer is returned at its original length, so callers accumulating many
// frames keep every complete frame scanned so far.
func (s *Scanner) fill(buf []byte, n int) ([]byte, error) {
	old := len(buf)
	if cap(buf) < old+n {
		// Amortized growth: an exact-size allocation per frame would make
		// multi-frame batch accumulation quadratic.
		newCap := 2 * cap(buf)
		if newCap < old+n {
			newCap = old + n
		}
		nb := make([]byte, old, newCap)
		copy(nb, buf)
		buf = nb
	}
	buf = buf[:old+n]
	if _, err := io.ReadFull(s.br, buf[old:]); err != nil {
		return buf[:old], err
	}
	return buf, nil
}

// AppendNext appends the next frame's encoded bytes to dst and returns the
// extended buffer. On any error dst is returned unchanged (no partial frame
// bytes), so a batching caller keeps every frame appended before the error.
// Errors match Next: io.EOF at a clean end of stream, io.ErrUnexpectedEOF
// for a truncated frame. This is the zero-copy feed for batched parallel
// decode — frames land directly in the caller's batch blob with no
// intermediate per-frame copy.
func (s *Scanner) AppendNext(dst []byte) ([]byte, error) {
	head, err := s.br.Peek(4)
	if err != nil {
		if err == io.EOF {
			if len(head) == 0 {
				return dst, io.EOF
			}
			// A 1-3 byte tail is a torn frame header, not a clean end.
			return dst, io.ErrUnexpectedEOF
		}
		return dst, err
	}
	magic := int32(binary.BigEndian.Uint32(head))
	base := len(dst)
	switch magic {
	case MagicCompressed:
		whole, err := s.fill(dst, headerLen)
		if err != nil {
			return dst[:base], unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[base+4:])))
		if natoms < 0 {
			return dst[:base], fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		s.natoms = natoms
		if natoms <= smallAtomThreshold {
			if whole, err = s.fill(whole, natoms*12); err != nil {
				return dst[:base], unexpected(err)
			}
			s.frames++
			return whole, nil
		}
		// precision + minint[3] + sizeint[3] + smallidx + bloblen
		if whole, err = s.fill(whole, 4*9); err != nil {
			return dst[:base], unexpected(err)
		}
		blobLen := int(binary.BigEndian.Uint32(whole[base+headerLen+32:]))
		padded := blobLen + (4-blobLen%4)%4
		if whole, err = s.fill(whole, padded); err != nil {
			return dst[:base], unexpected(err)
		}
		s.frames++
		return whole, nil

	case MagicRaw:
		whole, err := s.fill(dst, headerLen)
		if err != nil {
			return dst[:base], unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[base+4:])))
		if natoms < 0 {
			return dst[:base], fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		s.natoms = natoms
		if whole, err = s.fill(whole, natoms*12); err != nil {
			return dst[:base], unexpected(err)
		}
		s.frames++
		return whole, nil

	default:
		return dst, fmt.Errorf("%w: %d", ErrBadMagic, magic)
	}
}

// Next returns the next frame's encoded bytes. The slice is valid until the
// following Next call. It returns io.EOF cleanly at the end of the stream
// and io.ErrUnexpectedEOF for a truncated frame.
func (s *Scanner) Next() ([]byte, error) {
	buf, err := s.AppendNext(s.buf[:0])
	if err != nil {
		return nil, err
	}
	s.buf = buf
	return buf, nil
}

// NAtoms returns the atom count of the most recently scanned frame.
func (s *Scanner) NAtoms() int { return s.natoms }

// Frames returns the number of frames scanned so far.
func (s *Scanner) Frames() int { return s.frames }
