package xtc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Scanner walks a concatenated frame stream and yields each frame's complete
// encoded bytes *without* decoding coordinates. Framing needs only the magic,
// the atom count, and (for large compressed frames) the blob length, so a
// scan is orders of magnitude cheaper than a decode — which is what lets
// ParallelReader decouple cheap framing from expensive decompression and fan
// the decode out across cores.
type Scanner struct {
	br     *bufio.Reader
	buf    []byte
	natoms int
	frames int
}

// NewScanner returns a Scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// grow extends s.buf by n bytes filled from the stream and returns the
// complete buffer so far.
func (s *Scanner) grow(n int) ([]byte, error) {
	old := len(s.buf)
	if cap(s.buf) < old+n {
		nb := make([]byte, old, old+n)
		copy(nb, s.buf)
		s.buf = nb
	}
	s.buf = s.buf[:old+n]
	if _, err := io.ReadFull(s.br, s.buf[old:]); err != nil {
		s.buf = s.buf[:old]
		return nil, err
	}
	return s.buf, nil
}

// Next returns the next frame's encoded bytes. The slice is valid until the
// following Next call. It returns io.EOF cleanly at the end of the stream
// and io.ErrUnexpectedEOF for a truncated frame.
func (s *Scanner) Next() ([]byte, error) {
	head, err := s.br.Peek(4)
	if err != nil {
		if err == io.EOF {
			if len(head) == 0 {
				return nil, io.EOF
			}
			// A 1-3 byte tail is a torn frame header, not a clean end.
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	magic := int32(binary.BigEndian.Uint32(head))
	s.buf = s.buf[:0]
	switch magic {
	case MagicCompressed:
		whole, err := s.grow(headerLen)
		if err != nil {
			return nil, unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[4:])))
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		s.natoms = natoms
		if natoms <= smallAtomThreshold {
			whole, err = s.grow(natoms * 12)
			if err != nil {
				return nil, unexpected(err)
			}
			s.frames++
			return whole, nil
		}
		// precision + minint[3] + sizeint[3] + smallidx + bloblen
		if whole, err = s.grow(4 * 9); err != nil {
			return nil, unexpected(err)
		}
		blobLen := int(binary.BigEndian.Uint32(whole[headerLen+32:]))
		padded := blobLen + (4-blobLen%4)%4
		if whole, err = s.grow(padded); err != nil {
			return nil, unexpected(err)
		}
		s.frames++
		return whole, nil

	case MagicRaw:
		whole, err := s.grow(headerLen)
		if err != nil {
			return nil, unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[4:])))
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		s.natoms = natoms
		if whole, err = s.grow(natoms * 12); err != nil {
			return nil, unexpected(err)
		}
		s.frames++
		return whole, nil

	default:
		return nil, fmt.Errorf("%w: %d", ErrBadMagic, magic)
	}
}

// NAtoms returns the atom count of the most recently scanned frame.
func (s *Scanner) NAtoms() int { return s.natoms }

// Frames returns the number of frames scanned so far.
func (s *Scanner) Frames() int { return s.frames }
