// Package xtc implements a GROMACS-style compressed trajectory format.
//
// Each frame holds a snapshot of 3-D coordinates for a fixed set of atoms.
// Coordinates are quantized to integers at a configurable precision and
// compressed with the 3dfcoord scheme used by the XTC format: per-frame
// integer bounding box, multi-precision packing of triplets into the
// minimal number of bits (via the "magic ints" size table), and run-length
// delta coding for spatially adjacent atoms (water molecules), with an
// adaptive small-delta bit width.
//
// The byte layout is self-describing and fully implemented in this package
// (encoder and decoder); it deliberately follows the structure of the XTC
// format (XDR framing, magic-int table, 5-bit run fields) without claiming
// byte-for-byte compatibility with files produced by GROMACS. The
// first/second atom swap optimization of the original is intentionally
// omitted; see DESIGN.md.
package xtc

// magicints is the size table from the XTC 3dfcoord coder: a roughly
// geometric sequence (ratio ~2^(1/3)) so that one table step corresponds to
// one third of a bit per coordinate triplet.
var magicints = [...]uint32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 8,
	10, 12, 16, 20, 25, 32, 40, 50, 64, 80,
	101, 128, 161, 203, 256, 322, 406, 512, 645, 812,
	1024, 1290, 1625, 2048, 2580, 3250, 4096, 5060, 6501, 8192,
	10321, 13003, 16384, 20642, 26007, 32768, 41285, 52015, 65536, 82570,
	104031, 131072, 165140, 208063, 262144, 330280, 416127, 524287, 660561, 832255,
	1048576, 1321122, 1664510, 2097152, 2642245, 3329021, 4194304, 5284491, 6658042, 8388607,
	10568983, 13316085, 16777216,
}

const (
	// firstIdx is the first usable index into magicints (first non-zero).
	firstIdx = 9
	// lastIdx is the final index into magicints.
	lastIdx = len(magicints) - 1
)

// sizeOfInt returns the number of bits needed to represent values in
// [0, size), i.e. the smallest n with 1<<n >= size.
func sizeOfInt(size uint32) uint {
	var n uint
	for num := uint64(1); num < uint64(size); num <<= 1 {
		n++
	}
	return n
}

// sizeOfInts returns the number of bits needed to encode one combined value
// in [0, sizes[0]*sizes[1]*...*sizes[n-1]) using multi-precision byte
// arithmetic, as the XTC coder does. This is tighter than summing
// sizeOfInt over the dimensions.
func sizeOfInts(sizes []uint32) uint {
	var bytes [16]byte
	bytes[0] = 1
	nbytes := 1
	for _, size := range sizes {
		var carry uint64
		for i := 0; i < nbytes; i++ {
			carry += uint64(bytes[i]) * uint64(size)
			bytes[i] = byte(carry)
			carry >>= 8
		}
		for carry != 0 {
			bytes[nbytes] = byte(carry)
			carry >>= 8
			nbytes++
		}
	}
	nbits := uint(0)
	for num := uint32(1); uint32(bytes[nbytes-1]) >= num; num <<= 1 {
		nbits++
	}
	return nbits + uint(nbytes-1)*8
}
