package xtc

import (
	"fmt"

	"repro/internal/xdr"
)

// indexMagic guards serialized Index blobs. Version 1 entries are 20 bytes
// (offset, size, natoms); version 2 ("XID2") appends a per-frame CRC32C,
// the integrity anchor for verified reads and scrubbing. Readers accept
// both so datasets ingested before checksums still open.
const (
	indexMagic   = 0x58494458 // "XIDX"
	indexMagicV2 = 0x58494432 // "XID2"
)

// Marshal serializes the index (ADA stores one per subset dropping so
// random-access playback never re-scans the trajectory). An index with a
// complete per-frame checksum set serializes as version 2; anything else
// (legacy or partially checksummed) falls back to version 1.
func (x *Index) Marshal() []byte {
	if x.HasChecksums() {
		w := xdr.NewWriter(16 + 24*len(x.offsets))
		w.Uint32(indexMagicV2)
		w.Uint32(uint32(len(x.offsets)))
		for i := range x.offsets {
			w.Int64(x.offsets[i])
			w.Int64(x.sizes[i])
			w.Int32(x.natoms[i])
			w.Uint32(x.crcs[i])
		}
		return w.Bytes()
	}
	w := xdr.NewWriter(16 + 20*len(x.offsets))
	w.Uint32(indexMagic)
	w.Uint32(uint32(len(x.offsets)))
	for i := range x.offsets {
		w.Int64(x.offsets[i])
		w.Int64(x.sizes[i])
		w.Int32(x.natoms[i])
	}
	return w.Bytes()
}

// UnmarshalIndex parses a serialized index, either version.
func UnmarshalIndex(data []byte) (*Index, error) {
	r := xdr.NewReader(data)
	magic := r.Uint32()
	entry := 0
	switch magic {
	case indexMagic:
		entry = 20
	case indexMagicV2:
		entry = 24
	default:
		return nil, fmt.Errorf("xtc: bad index magic %#x", magic)
	}
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if int(n)*entry > r.Remaining() {
		return nil, fmt.Errorf("xtc: index claims %d frames but only %d bytes remain", n, r.Remaining())
	}
	x := &Index{
		offsets: make([]int64, n),
		sizes:   make([]int64, n),
		natoms:  make([]int32, n),
	}
	if magic == indexMagicV2 {
		x.crcs = make([]uint32, n)
	}
	var prevEnd int64
	for i := uint32(0); i < n; i++ {
		x.offsets[i] = r.Int64()
		x.sizes[i] = r.Int64()
		x.natoms[i] = r.Int32()
		if magic == indexMagicV2 {
			x.crcs[i] = r.Uint32()
		}
		if x.offsets[i] != prevEnd || x.sizes[i] <= 0 || x.natoms[i] < 0 {
			return nil, fmt.Errorf("xtc: corrupt index entry %d", i)
		}
		prevEnd = x.offsets[i] + x.sizes[i]
	}
	return x, r.Err()
}
