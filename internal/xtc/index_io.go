package xtc

import (
	"fmt"

	"repro/internal/xdr"
)

// indexMagic guards serialized Index blobs.
const indexMagic = 0x58494458 // "XIDX"

// Marshal serializes the index (ADA stores one per subset dropping so
// random-access playback never re-scans the trajectory).
func (x *Index) Marshal() []byte {
	w := xdr.NewWriter(16 + 20*len(x.offsets))
	w.Uint32(indexMagic)
	w.Uint32(uint32(len(x.offsets)))
	for i := range x.offsets {
		w.Int64(x.offsets[i])
		w.Int64(x.sizes[i])
		w.Int32(x.natoms[i])
	}
	return w.Bytes()
}

// UnmarshalIndex parses a serialized index.
func UnmarshalIndex(data []byte) (*Index, error) {
	r := xdr.NewReader(data)
	if magic := r.Uint32(); magic != indexMagic {
		return nil, fmt.Errorf("xtc: bad index magic %#x", magic)
	}
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if int(n)*20 > r.Remaining() {
		return nil, fmt.Errorf("xtc: index claims %d frames but only %d bytes remain", n, r.Remaining())
	}
	x := &Index{
		offsets: make([]int64, n),
		sizes:   make([]int64, n),
		natoms:  make([]int32, n),
	}
	var prevEnd int64
	for i := uint32(0); i < n; i++ {
		x.offsets[i] = r.Int64()
		x.sizes[i] = r.Int64()
		x.natoms[i] = r.Int32()
		if x.offsets[i] != prevEnd || x.sizes[i] <= 0 || x.natoms[i] < 0 {
			return nil, fmt.Errorf("xtc: corrupt index entry %d", i)
		}
		prevEnd = x.offsets[i] + x.sizes[i]
	}
	return x, r.Err()
}
