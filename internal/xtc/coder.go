package xtc

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/xdr"
)

// Vec3 is a single-precision 3-D coordinate in nanometers.
type Vec3 [3]float32

// Coordinate quantization limits: quantized values must stay well inside
// int32 so per-dimension spans fit uint32 arithmetic.
const (
	maxQuantized = 1 << 30
	// maxRunAtoms is the longest delta-coded run following an absolutely
	// coded atom (8 atoms = 24 ints, matching the XTC 5-bit run field).
	maxRunAtoms = 8
)

// ErrPrecision is returned when a coordinate does not fit the quantization
// range at the requested precision.
var ErrPrecision = errors.New("xtc: coordinate exceeds quantization range")

// coderState holds the adaptive small-delta width shared by the compressor
// and decompressor. Both sides must evolve it identically.
type coderState struct {
	smallIdx  int
	minIdx    int
	maxIdx    int
	smallNum  int32  // half of magicints[smallIdx]
	sizeSmall uint32 // magicints[smallIdx]
	smaller   int32  // half of magicints[smallIdx-1]
	nbitsRun  uint   // bits for one delta triplet at smallIdx
}

func newCoderState(smallIdx int) coderState {
	s := coderState{smallIdx: smallIdx}
	s.maxIdx = smallIdx + 8
	if s.maxIdx > lastIdx {
		s.maxIdx = lastIdx
	}
	s.minIdx = s.maxIdx - 8
	if s.minIdx < firstIdx {
		s.minIdx = firstIdx
	}
	s.refresh()
	return s
}

func (s *coderState) refresh() {
	s.smallNum = int32(magicints[s.smallIdx] / 2)
	s.sizeSmall = magicints[s.smallIdx]
	prev := s.smallIdx - 1
	if prev < firstIdx {
		prev = firstIdx
	}
	s.smaller = int32(magicints[prev] / 2)
	sizes := [3]uint32{s.sizeSmall, s.sizeSmall, s.sizeSmall}
	s.nbitsRun = sizeOfInts(sizes[:])
}

// adjust moves the small index by dir (-1, 0, +1), clamped to the window
// fixed at frame start.
func (s *coderState) adjust(dir int) {
	idx := s.smallIdx + dir
	if idx < s.minIdx {
		idx = s.minIdx
	}
	if idx > s.maxIdx {
		idx = s.maxIdx
	}
	if idx != s.smallIdx {
		s.smallIdx = idx
		s.refresh()
	}
}

// quantize converts coords to integers at the given precision. The inner
// loop avoids the per-coordinate sign branch (coordinates alternate sign
// unpredictably): Abs/Copysign are compiler intrinsics that reduce to bit
// masks, and a single !(|f| < max) compare also rejects NaN, since NaN
// fails every comparison.
func quantize(coords []Vec3, precision float32, out []int32) error {
	for i, c := range coords {
		for d := 0; d < 3; d++ {
			f := float64(c[d]) * float64(precision)
			if !(math.Abs(f) < maxQuantized) {
				return fmt.Errorf("%w: atom %d dim %d value %g at precision %g",
					ErrPrecision, i, d, c[d], precision)
			}
			out[i*3+d] = int32(f + math.Copysign(0.5, f))
		}
	}
	return nil
}

// halfMagic[i] = magicints[i]/2, the per-component bound the small-delta
// coder tests against, precomputed so hot loops compare in uint32. Three
// all-ones sentinel entries pad the tail so initialSmallIdx's fixed
// three-probe lookup never reads out of bounds (no real bound reaches
// MaxUint32, so the sentinels never count).
var halfMagic = func() (t [len(magicints) + 3]uint32) {
	for i, m := range magicints {
		t[i] = m / 2
	}
	for i := len(magicints); i < len(t); i++ {
		t[i] = math.MaxUint32
	}
	return t
}()

// smallIdxStart[L] is the first usable table index whose half-size exceeds
// the smallest value of bit length L, so the per-delta table lookup in
// initialSmallIdx starts at most a couple of entries early instead of
// scanning the whole table (the ratio between entries is ~2^(1/3), so at
// most three entries share a bit length).
var smallIdxStart = func() (t [34]int) {
	for l := range t {
		lo := uint32(0)
		if l > 0 {
			lo = 1 << (l - 1)
		}
		idx := firstIdx
		for idx < lastIdx && halfMagic[idx] <= lo {
			idx++
		}
		t[l] = idx
	}
	return t
}()

// initialSmallIdx picks the starting table index so that roughly 60% of
// consecutive-atom displacements fit the small-delta coder. (The original
// XTC uses the single smallest displacement, which under-shoots badly when
// a frame mixes tightly bonded hydrogens with molecule-to-molecule hops;
// the in-stream adaptation window is anchored at this index, so a robust
// percentile start compresses noticeably better. See DESIGN.md.)
//
// This pre-pass touches every atom once, so its inner loop is branchless:
// quantized values are bounded by ±2^30, deltas therefore fit int32 exactly,
// and the arithmetic-shift absolute value plus uint32 compares emit no
// data-dependent branches (which mispredict ~50% on thermal-noise deltas).
func initialSmallIdx(ints []int32) int {
	n := len(ints) / 3
	if n < 2 {
		return firstIdx
	}
	// Histogram of the table index each consecutive delta needs.
	var hist [len(magicints)]int
	px, py, pz := ints[0], ints[1], ints[2]
	for i := 1; i < n; i++ {
		x, y, z := ints[i*3], ints[i*3+1], ints[i*3+2]
		dx, dy, dz := x-px, y-py, z-pz
		px, py, pz = x, y, z
		mx, my, mz := dx>>31, dy>>31, dz>>31
		ax := uint32((dx ^ mx) - mx)
		ay := uint32((dy ^ my) - my)
		az := uint32((dz ^ mz) - mz)
		need := ax
		if ay > need {
			need = ay
		}
		if az > need {
			need = az
		}
		// The table ratio is ~2^(1/3), so at most three entries share a
		// bit length: the residual scan is a fixed prefix count over three
		// probes of the monotone table (a variable-trip loop here
		// mispredicts on nearly every delta).
		idx := smallIdxStart[bits.Len32(need)]
		c0, c1, c2 := 0, 0, 0
		if halfMagic[idx] <= need {
			c0 = 1
		}
		if halfMagic[idx+1] <= need {
			c1 = 1
		}
		if halfMagic[idx+2] <= need {
			c2 = 1
		}
		idx += c0 + c1 + c2
		if idx > lastIdx {
			idx = lastIdx
		}
		hist[idx]++
	}
	target := (n - 1) * 3 / 5
	cum := 0
	for idx := firstIdx; idx <= lastIdx; idx++ {
		cum += hist[idx]
		if cum > target {
			return idx
		}
	}
	return lastIdx
}

// frameBounds computes per-dimension min and span of the quantized coords.
func frameBounds(ints []int32) (minInt [3]int32, sizeInt [3]uint32) {
	for d := 0; d < 3; d++ {
		minInt[d] = math.MaxInt32
	}
	var maxInt [3]int32
	for d := 0; d < 3; d++ {
		maxInt[d] = math.MinInt32
	}
	for i := 0; i < len(ints); i += 3 {
		for d := 0; d < 3; d++ {
			v := ints[i+d]
			if v < minInt[d] {
				minInt[d] = v
			}
			if v > maxInt[d] {
				maxInt[d] = v
			}
		}
	}
	if len(ints) == 0 {
		minInt = [3]int32{}
		maxInt = [3]int32{}
	}
	for d := 0; d < 3; d++ {
		sizeInt[d] = uint32(int64(maxInt[d]) - int64(minInt[d]) + 1)
	}
	return minInt, sizeInt
}

// compressCoords writes the bit stream for the quantized coordinates into w
// (a pooled writer on the hot path). Returns the chosen initial small index
// (stored in the frame header).
func compressCoords(w *xdr.BitWriter, ints []int32, minInt [3]int32, sizeInt [3]uint32) (smallIdx int) {
	natoms := len(ints) / 3
	smallIdx = initialSmallIdx(ints)
	st := newCoderState(smallIdx)

	// Absolute-coding widths.
	bitSize := uint(0)
	var bitSizeInt [3]uint
	if sizeInt[0] > 0xffffff || sizeInt[1] > 0xffffff || sizeInt[2] > 0xffffff {
		for d := 0; d < 3; d++ {
			bitSizeInt[d] = sizeOfInt(sizeInt[d])
		}
	} else {
		bitSize = sizeOfInts(sizeInt[:])
	}

	i := 0
	for i < natoms {
		// Absolutely coded atom.
		var vals [3]uint32
		for d := 0; d < 3; d++ {
			vals[d] = uint32(int64(ints[i*3+d]) - int64(minInt[d]))
		}
		if bitSize == 0 {
			for d := 0; d < 3; d++ {
				w.WriteBits(vals[d], bitSizeInt[d])
			}
		} else {
			packInts(w, bitSize, sizeInt[:], vals[:])
		}
		prev := [3]int32{ints[i*3], ints[i*3+1], ints[i*3+2]}
		i++

		// Collect the delta run, storing each triplet already biased by
		// smallNum (the form both the fits test and the packer consume; the
		// state only adapts between runs, so the bias is constant here).
		// fitsSmall's two signed comparisons per component collapse into
		// one unsigned one: a negative biased component wraps to a huge
		// uint32 and fails the < sizeSmall test the same way.
		var biased [maxRunAtoms][3]uint32
		sn, sizeSmall, smaller := st.smallNum, st.sizeSmall, st.smaller
		run := 0
		allSmaller := true
		for i < natoms && run < maxRunAtoms {
			dx := ints[i*3] - prev[0]
			dy := ints[i*3+1] - prev[1]
			dz := ints[i*3+2] - prev[2]
			bx, by, bz := uint32(dx+sn), uint32(dy+sn), uint32(dz+sn)
			if bx >= sizeSmall || by >= sizeSmall || bz >= sizeSmall {
				break
			}
			if allSmaller &&
				(dx > smaller || dx < -smaller ||
					dy > smaller || dy < -smaller ||
					dz > smaller || dz < -smaller) {
				allSmaller = false
			}
			biased[run] = [3]uint32{bx, by, bz}
			prev[0], prev[1], prev[2] = ints[i*3], ints[i*3+1], ints[i*3+2]
			run++
			i++
		}

		// Adaptation: full run of strictly smaller deltas tightens; an
		// empty run loosens for the next group.
		dir := 0
		switch {
		case run == maxRunAtoms && allSmaller && st.smallIdx > st.minIdx:
			dir = -1
		case run == 0 && st.smallIdx < st.maxIdx:
			dir = 1
		}

		// 5-bit run field: 3*runAtoms + (dir+1), exactly as XTC.
		w.WriteBits(uint32(3*run+dir+1), 5)
		if st.nbitsRun <= 64 {
			// Fused small-delta path, the encode hot spot: each biased
			// triplet combines with two uint64 multiplies into one <=64-bit
			// accumulator write, with no per-value call or slice traffic.
			// The mirror of decompressCoords' fused run loop.
			small := uint64(sizeSmall)
			nb := st.nbitsRun
			for k := 0; k < run; k++ {
				x := uint64(biased[k][0])
				y := uint64(biased[k][1])
				z := uint64(biased[k][2])
				w.WriteBits64((x*small+y)*small+z, nb)
			}
		} else {
			sizes := [3]uint32{sizeSmall, sizeSmall, sizeSmall}
			for k := 0; k < run; k++ {
				packIntsBig(w, st.nbitsRun, sizes[:], biased[k][:])
			}
		}
		st.adjust(dir)
	}
	return smallIdx
}

// decompressCoords is the inverse of compressCoords.
func decompressCoords(blob []byte, natoms int, minInt [3]int32, sizeInt [3]uint32, smallIdx int, out []int32) error {
	if smallIdx < firstIdx || smallIdx > lastIdx {
		return fmt.Errorf("xtc: small index %d out of range [%d,%d]", smallIdx, firstIdx, lastIdx)
	}
	st := newCoderState(smallIdx)

	bitSize := uint(0)
	var bitSizeInt [3]uint
	if sizeInt[0] > 0xffffff || sizeInt[1] > 0xffffff || sizeInt[2] > 0xffffff {
		for d := 0; d < 3; d++ {
			bitSizeInt[d] = sizeOfInt(sizeInt[d])
		}
	} else {
		bitSize = sizeOfInts(sizeInt[:])
	}

	r := xdr.NewBitReader(blob)
	readAbs := func(i int) {
		var vals [3]uint32
		if bitSize == 0 {
			for d := 0; d < 3; d++ {
				vals[d] = r.ReadBits(bitSizeInt[d])
			}
		} else {
			unpackInts(r, bitSize, sizeInt[:], vals[:])
		}
		for d := 0; d < 3; d++ {
			out[i*3+d] = int32(int64(vals[d]) + int64(minInt[d]))
		}
	}

	i := 0
	for i < natoms {
		readAbs(i)
		prev := [3]int32{out[i*3], out[i*3+1], out[i*3+2]}
		i++

		field := r.ReadBits(5)
		if r.Err() != nil {
			return r.Err()
		}
		dir := int(field%3) - 1
		run := (int(field) - (dir + 1)) / 3
		if run < 0 || run > maxRunAtoms || i+run > natoms {
			return fmt.Errorf("xtc: corrupt run field %d at atom %d/%d", field, i, natoms)
		}
		if st.nbitsRun <= 64 {
			// Fused small-delta path: the whole triplet is one <=64-bit
			// accumulator read split by two divisions, decoded straight
			// into out without the per-value call and slice traffic of
			// the generic unpackInts. This loop is the decode hot spot.
			small := uint64(st.sizeSmall)
			nb, sn := st.nbitsRun, st.smallNum
			for k := 0; k < run; k++ {
				v := r.ReadBits64(nb)
				q := v / small
				z := int32(v - q*small)
				x64 := q / small
				y := int32(q - x64*small)
				prev[0] += int32(x64) - sn
				prev[1] += y - sn
				prev[2] += z - sn
				out[i*3] = prev[0]
				out[i*3+1] = prev[1]
				out[i*3+2] = prev[2]
				i++
			}
		} else {
			sizes := [3]uint32{st.sizeSmall, st.sizeSmall, st.sizeSmall}
			for k := 0; k < run; k++ {
				var vals [3]uint32
				unpackInts(r, st.nbitsRun, sizes[:], vals[:])
				for d := 0; d < 3; d++ {
					prev[d] += int32(vals[d]) - st.smallNum
					out[i*3+d] = prev[d]
				}
				i++
			}
		}
		st.adjust(dir)
	}
	return r.Err()
}

// dequantize converts quantized integers back to float coordinates.
func dequantize(ints []int32, precision float32, out []Vec3) {
	inv := 1.0 / float64(precision)
	for i := range out {
		for d := 0; d < 3; d++ {
			out[i][d] = float32(float64(ints[i*3+d]) * inv)
		}
	}
}
