package xtc

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// Magic numbers distinguishing compressed and raw frames.
const (
	MagicCompressed = 1995 // homage to the XTC magic
	MagicRaw        = 1994 // uncompressed ("D-" scenarios in the paper)
)

// smallAtomThreshold mirrors the XTC behavior of storing tiny systems as
// raw floats even inside a compressed frame.
const smallAtomThreshold = 9

// ErrBadMagic is returned when a frame does not start with a known magic.
var ErrBadMagic = errors.New("xtc: bad frame magic")

// Frame is one snapshot of a trajectory.
type Frame struct {
	Step      int32
	Time      float32 // picoseconds
	Box       [9]float32
	Coords    []Vec3
	Precision float32 // quantization used at encode time (compressed frames)
}

// NAtoms returns the number of atoms in the frame.
func (f *Frame) NAtoms() int { return len(f.Coords) }

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := *f
	g.Coords = make([]Vec3, len(f.Coords))
	copy(g.Coords, f.Coords)
	return &g
}

// AppendEncoded appends the compressed encoding of f to w.
func (f *Frame) AppendEncoded(w *xdr.Writer) error {
	natoms := len(f.Coords)
	w.Int32(MagicCompressed)
	w.Int32(int32(natoms))
	w.Int32(f.Step)
	w.Float32(f.Time)
	for _, b := range f.Box {
		w.Float32(b)
	}
	if natoms <= smallAtomThreshold {
		for _, c := range f.Coords {
			for d := 0; d < 3; d++ {
				w.Float32(c[d])
			}
		}
		return nil
	}
	prec := f.Precision
	if prec <= 0 {
		prec = DefaultPrecision
	}
	ints := getInts(natoms * 3)
	defer putInts(ints)
	if err := quantize(f.Coords, prec, ints); err != nil {
		return err
	}
	minInt, sizeInt := frameBounds(ints)
	bw := getBitWriter()
	smallIdx := compressCoords(bw, ints, minInt, sizeInt)

	w.Float32(prec)
	for d := 0; d < 3; d++ {
		w.Int32(minInt[d])
	}
	for d := 0; d < 3; d++ {
		w.Uint32(sizeInt[d])
	}
	w.Int32(int32(smallIdx))
	w.VarOpaque(bw.Bytes())
	putBitWriter(bw)
	return nil
}

// AppendRaw appends the uncompressed encoding of f to w. This is the format
// of the paper's "D-" (decompressed) datasets and of ADA's pre-processed
// subsets.
func (f *Frame) AppendRaw(w *xdr.Writer) {
	w.Int32(MagicRaw)
	w.Int32(int32(len(f.Coords)))
	w.Int32(f.Step)
	w.Float32(f.Time)
	for _, b := range f.Box {
		w.Float32(b)
	}
	for _, c := range f.Coords {
		for d := 0; d < 3; d++ {
			w.Float32(c[d])
		}
	}
}

// DefaultPrecision is the customary XTC quantization (1/1000 nm).
const DefaultPrecision = 1000

// decodeHeader reads the shared frame prefix after the magic.
func decodeHeader(r *xdr.Reader, f *Frame) int {
	natoms := int(r.Int32())
	f.Step = r.Int32()
	f.Time = r.Float32()
	for d := 0; d < 9; d++ {
		f.Box[d] = r.Float32()
	}
	return natoms
}

// DecodeFrame decodes one frame (compressed or raw) from r.
func DecodeFrame(r *xdr.Reader) (*Frame, error) {
	magic := r.Int32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	f := &Frame{}
	switch magic {
	case MagicCompressed:
		natoms := decodeHeader(r, f)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		f.Coords = make([]Vec3, natoms)
		if natoms <= smallAtomThreshold {
			for i := 0; i < natoms; i++ {
				for d := 0; d < 3; d++ {
					f.Coords[i][d] = r.Float32()
				}
			}
			f.Precision = DefaultPrecision
			return f, r.Err()
		}
		f.Precision = r.Float32()
		var minInt [3]int32
		var sizeInt [3]uint32
		for d := 0; d < 3; d++ {
			minInt[d] = r.Int32()
		}
		for d := 0; d < 3; d++ {
			sizeInt[d] = r.Uint32()
		}
		smallIdx := int(r.Int32())
		blob := r.VarOpaque()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if f.Precision <= 0 {
			return nil, fmt.Errorf("xtc: invalid precision %g", f.Precision)
		}
		ints := getInts(natoms * 3)
		defer putInts(ints)
		if err := decompressCoords(blob, natoms, minInt, sizeInt, smallIdx, ints); err != nil {
			return nil, err
		}
		dequantize(ints, f.Precision, f.Coords)
		return f, nil

	case MagicRaw:
		natoms := decodeHeader(r, f)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if natoms < 0 || natoms*12 > r.Remaining() {
			return nil, fmt.Errorf("xtc: raw frame atom count %d exceeds buffer", natoms)
		}
		f.Coords = make([]Vec3, natoms)
		for i := 0; i < natoms; i++ {
			for d := 0; d < 3; d++ {
				f.Coords[i][d] = r.Float32()
			}
		}
		return f, r.Err()

	default:
		return nil, fmt.Errorf("%w: %d", ErrBadMagic, magic)
	}
}

// Subset returns a new frame containing only the atoms whose indices are
// listed in idx (which must be sorted ascending for meaningful trajectories,
// though any order is accepted).
func (f *Frame) Subset(idx []int) (*Frame, error) {
	g := &Frame{}
	if err := f.SubsetInto(idx, g); err != nil {
		return nil, err
	}
	return g, nil
}

// SubsetInto fills dst with the atoms of f selected by idx, reusing
// dst.Coords' capacity. It is the allocation-free form of Subset for hot
// paths that split every frame once per tagged subset; on error dst's
// contents are unspecified.
func (f *Frame) SubsetInto(idx []int, dst *Frame) error {
	dst.Step, dst.Time, dst.Box, dst.Precision = f.Step, f.Time, f.Box, f.Precision
	if cap(dst.Coords) < len(idx) {
		dst.Coords = make([]Vec3, len(idx))
	}
	dst.Coords = dst.Coords[:len(idx)]
	for i, a := range idx {
		if a < 0 || a >= len(f.Coords) {
			return fmt.Errorf("xtc: subset index %d out of range (natoms=%d)", a, len(f.Coords))
		}
		dst.Coords[i] = f.Coords[a]
	}
	return nil
}
