package xtc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// threeFrameStream encodes three compressed frames (natoms large enough to
// take the blob-coded path) and returns the stream plus each frame's offset
// and length.
func threeFrameStream(t *testing.T, natoms int) (stream []byte, offsets, lengths []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	coords := make([]Vec3, natoms)
	for i := range coords {
		coords[i] = Vec3{rng.Float32() * 4, rng.Float32() * 4, rng.Float32() * 4}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for k := 0; k < 3; k++ {
		f := &Frame{Step: int32(k), Time: float32(k), Precision: 1000, Coords: coords}
		for i := range coords {
			for d := 0; d < 3; d++ {
				coords[i][d] += rng.Float32() * 0.01
			}
		}
		before := buf.Len()
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, int64(before))
		lengths = append(lengths, int64(buf.Len()-before))
	}
	return buf.Bytes(), offsets, lengths
}

// readAllVia exhausts the stream through one of the three frame readers and
// returns the frames read plus the terminal error (nil for clean EOF).
func readAllVia(t *testing.T, kind string, stream []byte) ([]*Frame, error) {
	t.Helper()
	switch kind {
	case "reader":
		return NewReader(bytes.NewReader(stream)).ReadAll()
	case "scanner":
		sc := NewScanner(bytes.NewReader(stream))
		var frames []*Frame
		for {
			blob, err := sc.Next()
			if err == io.EOF {
				return frames, nil
			}
			if err != nil {
				return frames, err
			}
			f, err := decodeBytes(blob)
			if err != nil {
				return frames, err
			}
			frames = append(frames, f)
		}
	case "parallel":
		pr := NewParallelReader(bytes.NewReader(stream), 3)
		defer pr.Close()
		return pr.ReadAll()
	case "parallel-frame-batch":
		// One frame per work item: the error always lands on its own batch.
		pr := NewParallelReader(bytes.NewReader(stream), 3)
		pr.BatchBytes = 1
		defer pr.Close()
		return pr.ReadAll()
	case "parallel-whole-batch":
		// Everything in one work item: the error rides behind intact frames
		// inside the same batch.
		pr := NewParallelReader(bytes.NewReader(stream), 3)
		pr.BatchBytes = 1 << 30
		defer pr.Close()
		return pr.ReadAll()
	}
	t.Fatalf("unknown reader kind %q", kind)
	return nil, nil
}

// readerKinds are the frame-reader variants every framing-error table runs
// over; the batch-size extremes pin the batched pipeline's error placement.
var readerKinds = []string{"reader", "scanner", "parallel", "parallel-frame-batch", "parallel-whole-batch"}

// TestTruncationTable cuts a 3-frame stream at every interesting byte
// boundary class of every frame and checks all three readers agree: frames
// before the cut decode, the cut itself surfaces as ErrUnexpectedEOF (or a
// clean EOF exactly at a frame boundary).
func TestTruncationTable(t *testing.T) {
	stream, offsets, lengths := threeFrameStream(t, 24)
	classes := []struct {
		name string
		cut  func(frame int) int64 // absolute cut position within the stream
	}{
		{"at-boundary", func(f int) int64 { return offsets[f] }},
		{"mid-magic", func(f int) int64 { return offsets[f] + 2 }},
		{"mid-header", func(f int) int64 { return offsets[f] + headerLen - 3 }},
		{"mid-coord-metadata", func(f int) int64 { return offsets[f] + headerLen + 10 }},
		{"mid-blob", func(f int) int64 { return offsets[f] + lengths[f] - 3 }},
	}
	for _, kind := range readerKinds {
		for frame := 0; frame < 3; frame++ {
			for _, cl := range classes {
				cut := cl.cut(frame)
				t.Run(kind+"/"+cl.name+"/frame-"+string(rune('0'+frame)), func(t *testing.T) {
					frames, err := readAllVia(t, kind, stream[:cut])
					if cl.name == "at-boundary" {
						if err != nil {
							t.Fatalf("clean boundary cut errored: %v", err)
						}
						if len(frames) != frame {
							t.Fatalf("got %d frames, want %d", len(frames), frame)
						}
						return
					}
					if err != io.ErrUnexpectedEOF {
						t.Fatalf("want ErrUnexpectedEOF, got %v (%d frames)", err, len(frames))
					}
					if len(frames) != frame {
						t.Fatalf("decoded %d whole frames before the tear, want %d", len(frames), frame)
					}
				})
			}
		}
	}
	// The untouched stream reads fully everywhere.
	for _, kind := range readerKinds {
		frames, err := readAllVia(t, kind, stream)
		if err != nil || len(frames) != 3 {
			t.Fatalf("%s over whole stream: %d frames, %v", kind, len(frames), err)
		}
	}
}

// TestBadMagicAtEveryFramePosition corrupts the magic of each frame in turn;
// every reader must decode the preceding frames and then report ErrBadMagic.
func TestBadMagicAtEveryFramePosition(t *testing.T) {
	stream, offsets, _ := threeFrameStream(t, 24)
	for _, kind := range readerKinds {
		for frame := 0; frame < 3; frame++ {
			corrupt := append([]byte(nil), stream...)
			corrupt[offsets[frame]] = 0x7f // clobber the magic's high byte
			frames, err := readAllVia(t, kind, corrupt)
			if !errors.Is(err, ErrBadMagic) {
				t.Errorf("%s frame %d: want ErrBadMagic, got %v", kind, frame, err)
			}
			if len(frames) != frame {
				t.Errorf("%s frame %d: decoded %d frames before bad magic", kind, frame, len(frames))
			}
		}
	}
}

// TestScannerAppendNext: the zero-copy accumulation API concatenates frames
// into one caller-owned buffer byte-identically to the stream, and an error
// leaves every previously appended frame intact in the buffer.
func TestScannerAppendNext(t *testing.T) {
	stream, offsets, lengths := threeFrameStream(t, 24)
	sc := NewScanner(bytes.NewReader(stream))
	buf := make([]byte, 0, 8)
	var ends []int
	for {
		grown, err := sc.AppendNext(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		buf = grown
		ends = append(ends, len(buf))
	}
	if !bytes.Equal(buf, stream) {
		t.Fatalf("accumulated %d bytes != %d-byte stream", len(buf), len(stream))
	}
	for k := range ends {
		if want := offsets[k] + lengths[k]; int64(ends[k]) != want {
			t.Errorf("frame %d ends at %d, want %d", k, ends[k], want)
		}
	}

	// A truncated final frame must not leak partial bytes into the buffer.
	cut := stream[:offsets[2]+5]
	sc = NewScanner(bytes.NewReader(cut))
	buf = buf[:0]
	for i := 0; i < 2; i++ {
		var err error
		if buf, err = sc.AppendNext(buf); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := sc.AppendNext(buf)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: got %v", err)
	}
	if len(grown) != len(buf) || !bytes.Equal(grown, stream[:offsets[2]]) {
		t.Fatalf("torn frame left %d bytes, want the %d intact-frame bytes", len(grown), offsets[2])
	}
}

// TestScannerBlobsRoundTrip: every scanned blob decodes to the same frame
// the streaming Reader produces, and the scanner's frame/atom bookkeeping
// matches.
func TestScannerBlobsRoundTrip(t *testing.T) {
	stream, _, lengths := threeFrameStream(t, 24)
	want, err := NewReader(bytes.NewReader(stream)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(bytes.NewReader(stream))
	for k := 0; ; k++ {
		blob, err := sc.Next()
		if err == io.EOF {
			if k != len(want) {
				t.Fatalf("scanner saw %d frames, reader %d", k, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(blob)) != lengths[k] {
			t.Errorf("frame %d blob %d bytes, writer emitted %d", k, len(blob), lengths[k])
		}
		if sc.NAtoms() != want[k].NAtoms() {
			t.Errorf("frame %d scanner natoms %d, want %d", k, sc.NAtoms(), want[k].NAtoms())
		}
		if sc.Frames() != k+1 {
			t.Errorf("after frame %d scanner count %d", k, sc.Frames())
		}
		f, err := decodeBytes(blob)
		if err != nil {
			t.Fatal(err)
		}
		if f.Step != want[k].Step || len(f.Coords) != len(want[k].Coords) {
			t.Fatalf("frame %d decode mismatch", k)
		}
		for i := range f.Coords {
			if f.Coords[i] != want[k].Coords[i] {
				t.Fatalf("frame %d atom %d: %v != %v", k, i, f.Coords[i], want[k].Coords[i])
			}
		}
	}
}
