package xtc

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// DefaultBatchBytes is the target encoded size of one decode work item.
// Per-frame work items drown the ~µs channel send and pool traffic in
// per-item overhead once frames decode in hundreds of microseconds; a
// quarter-megabyte batch amortizes that overhead over many frames while
// staying small enough to spread a modest stream across the pool.
const DefaultBatchBytes = 256 << 10

// maxBatchFrames caps the frames per batch so tiny-frame streams still
// produce enough work items to keep every worker busy, and so the
// re-sequencing buffer stays bounded.
const maxBatchFrames = 64

// ParallelReader decodes a frame stream with a pool of worker goroutines and
// re-sequences the results, so output is frame-for-frame identical to Reader
// while the expensive 3dfcoord decompression runs on every core. A single
// Scanner goroutine finds frame boundaries (cheap: header + blob length) and
// accumulates contiguous multi-frame batches — appended zero-copy into a
// pooled blob — that are handed to the next free worker; the consumer side
// reorders by batch sequence number, with a direct fast path when batches
// arrive already in order (the common case for near-uniform frame cost).
//
// ParallelReader is for one consumer goroutine; ReadFrame itself must not be
// called concurrently.
type ParallelReader struct {
	r       io.Reader
	workers int

	// Observe, when set before the first read, receives the wall-clock
	// nanoseconds of every frame decode (in worker goroutines; the target
	// must be concurrency-safe, like a metrics.Histogram).
	Observe func(ns int64)

	// BatchBytes, when set before the first read, overrides the target
	// encoded bytes per work item (<=0 selects DefaultBatchBytes).
	BatchBytes int

	pm pdMetrics

	started bool
	work    chan scanBatch
	results chan decodeBatch
	quit    chan struct{}
	once    sync.Once

	// Consumer-side re-sequencing state. cur is the batch being delivered;
	// out-of-order arrivals wait in pending, whose size is bounded by the
	// channel capacities: at most cap(work)+cap(results) batches can be in
	// flight beyond the one the consumer needs, so len(pending) never
	// exceeds 2*workers+1 (asserted by tests via maxPending).
	pending    map[int]decodeBatch
	cur        decodeBatch
	curIdx     int
	haveCur    bool
	next       int
	maxPending int
	err        error // sticky terminal error (including io.EOF)
	busy       []atomic.Int64
}

// scanBatch is one work item: the concatenated encoded bytes of up to
// maxBatchFrames frames. err, when set, is the scanner's terminal error
// (io.EOF included), to be surfaced only after every frame in this batch.
type scanBatch struct {
	seq  int
	blob []byte
	ends []int // ends[i] = end offset of frame i within blob
	err  error
}

// decodeBatch is one work item's decoded output. err is either a decode
// error at frame len(frames) of the batch or the scanner's terminal error,
// either way to be surfaced only after frames.
type decodeBatch struct {
	seq    int
	frames []*Frame
	sizes  []int64
	err    error
}

// pdMetrics are the optional xtc.decode.* runtime metrics.
type pdMetrics struct {
	frames  *metrics.Counter
	batches *metrics.Counter
	ns      *metrics.Histogram
	workers *metrics.Gauge
}

// DefaultWorkers is the worker count selected for n <= 0: bounded by the
// machine's cores and by GOMAXPROCS (so a capped scheduler caps the pool).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewParallelReader returns a reader over r decoding on `workers` goroutines
// (<=0 selects DefaultWorkers).
func NewParallelReader(r io.Reader, workers int) *ParallelReader {
	workers = DefaultWorkers(workers)
	return &ParallelReader{
		r:       r,
		workers: workers,
		pending: make(map[int]decodeBatch),
		busy:    make([]atomic.Int64, workers),
	}
}

// SetMetrics records xtc.decode.* runtime metrics into reg. Call before the
// first ReadFrame.
func (p *ParallelReader) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.pm = pdMetrics{
		frames:  reg.Counter("xtc.decode.frames"),
		batches: reg.Counter("xtc.decode.batches"),
		ns:      reg.Histogram("xtc.decode.ns"),
		workers: reg.Gauge("xtc.decode.workers"),
	}
}

// Workers returns the size of the decode pool.
func (p *ParallelReader) Workers() int { return p.workers }

// WorkerBusy returns each worker's accumulated wall-clock decode time. It is
// safe to call at any point; mid-stream values are snapshots.
func (p *ParallelReader) WorkerBusy() []time.Duration {
	out := make([]time.Duration, len(p.busy))
	for i := range p.busy {
		out[i] = time.Duration(p.busy[i].Load())
	}
	return out
}

// batchBytes returns the effective batch-size target.
func (p *ParallelReader) batchBytes() int {
	if p.BatchBytes > 0 {
		return p.BatchBytes
	}
	return DefaultBatchBytes
}

func (p *ParallelReader) start() {
	p.started = true
	p.work = make(chan scanBatch, p.workers)
	p.results = make(chan decodeBatch, p.workers+1)
	p.quit = make(chan struct{})
	p.pm.workers.Set(int64(p.workers))

	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range p.work {
				d := p.decodeBatch(w, it)
				select {
				case p.results <- d:
				case <-p.quit:
					return
				}
			}
		}(w)
	}

	// Scanner: frame boundaries only, accumulated into multi-frame batch
	// blobs. The terminal error (io.EOF included) rides on the final batch,
	// so the consumer surfaces it only after every preceding frame.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(p.work)
		sc := NewScanner(p.r)
		target := p.batchBytes()
		seq := 0
		for {
			blob := getBytes(target)[:0]
			var ends []int
			var scanErr error
			for len(blob) < target && len(ends) < maxBatchFrames {
				grown, err := sc.AppendNext(blob)
				if err != nil {
					scanErr = err
					break
				}
				blob = grown
				ends = append(ends, len(blob))
			}
			select {
			case p.work <- scanBatch{seq: seq, blob: blob, ends: ends, err: scanErr}:
			case <-p.quit:
				putBytes(blob)
				return
			}
			if scanErr != nil {
				return
			}
			seq++
		}
	}()

	go func() {
		wg.Wait()
		close(p.results)
	}()
}

// decodeBatch decodes every frame of one batch on worker w. A decode failure
// truncates the batch at the failing frame and replaces the batch error.
func (p *ParallelReader) decodeBatch(w int, it scanBatch) decodeBatch {
	d := decodeBatch{seq: it.seq, err: it.err}
	if n := len(it.ends); n > 0 {
		d.frames = make([]*Frame, 0, n)
		d.sizes = make([]int64, 0, n)
	}
	start := 0
	for _, end := range it.ends {
		t0 := time.Now()
		f, err := decodeBytes(it.blob[start:end])
		ns := time.Since(t0).Nanoseconds()
		p.busy[w].Add(ns)
		if p.Observe != nil {
			p.Observe(ns)
		}
		p.pm.ns.Observe(ns)
		if err != nil {
			d.err = err
			break
		}
		p.pm.frames.Inc()
		d.frames = append(d.frames, f)
		d.sizes = append(d.sizes, int64(end-start))
		start = end
	}
	p.pm.batches.Inc()
	putBytes(it.blob)
	return d
}

// ReadFrameSize decodes the next frame and reports its encoded byte length.
// Semantics match Reader.ReadFrame: io.EOF at a clean end of stream,
// io.ErrUnexpectedEOF for truncation. After any error the reader is done and
// returns that error forever.
func (p *ParallelReader) ReadFrameSize() (*Frame, int64, error) {
	if p.err != nil {
		return nil, 0, p.err
	}
	if !p.started {
		p.start()
	}
	for {
		if p.haveCur {
			if p.curIdx < len(p.cur.frames) {
				f, size := p.cur.frames[p.curIdx], p.cur.sizes[p.curIdx]
				p.cur.frames[p.curIdx] = nil // allow GC as frames drain
				p.curIdx++
				return f, size, nil
			}
			if p.cur.err != nil {
				p.err = p.cur.err
				p.Close()
				return nil, 0, p.err
			}
			p.haveCur = false
			p.next++
		}
		if d, ok := p.pending[p.next]; ok {
			delete(p.pending, p.next)
			p.cur, p.curIdx, p.haveCur = d, 0, true
			continue
		}
		d, ok := <-p.results
		if !ok {
			p.err = fmt.Errorf("xtc: parallel reader closed mid-stream")
			return nil, 0, p.err
		}
		if d.seq == p.next {
			// In-order fast path: no re-sequencing buffer traffic.
			p.cur, p.curIdx, p.haveCur = d, 0, true
			continue
		}
		p.pending[d.seq] = d
		if len(p.pending) > p.maxPending {
			p.maxPending = len(p.pending)
		}
	}
}

// ReadFrame decodes the next frame, identically to Reader.ReadFrame.
func (p *ParallelReader) ReadFrame() (*Frame, error) {
	f, _, err := p.ReadFrameSize()
	return f, err
}

// ReadAll decodes every frame in the stream.
func (p *ParallelReader) ReadAll() ([]*Frame, error) {
	var frames []*Frame
	for {
		f, err := p.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// Close stops the scanner and the worker pool. It is idempotent and safe to
// call mid-stream; subsequent reads return an error.
func (p *ParallelReader) Close() error {
	if !p.started {
		p.started = true
		if p.err == nil {
			p.err = fmt.Errorf("xtc: parallel reader closed")
		}
		return nil
	}
	p.once.Do(func() {
		close(p.quit)
		// Drain so the closer goroutine's wg.Wait can finish even if
		// workers were blocked sending.
		go func() {
			for range p.results {
			}
		}()
	})
	if p.err == nil {
		p.err = fmt.Errorf("xtc: parallel reader closed")
	}
	return nil
}
