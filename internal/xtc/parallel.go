package xtc

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ParallelReader decodes a frame stream with a pool of worker goroutines and
// re-sequences the results, so output is frame-for-frame identical to Reader
// while the expensive 3dfcoord decompression runs on every core. A single
// Scanner goroutine finds frame boundaries (cheap: header + blob length) and
// hands each raw blob to the next free worker; the consumer side reorders by
// sequence number.
//
// ParallelReader is for one consumer goroutine; ReadFrame itself must not be
// called concurrently.
type ParallelReader struct {
	r       io.Reader
	workers int

	// Observe, when set before the first read, receives the wall-clock
	// nanoseconds of every frame decode (in worker goroutines; the target
	// must be concurrency-safe, like a metrics.Histogram).
	Observe func(ns int64)

	pm pdMetrics

	started bool
	work    chan scanItem
	results chan decodeItem
	quit    chan struct{}
	once    sync.Once
	pending map[int]decodeItem
	next    int
	err     error // sticky terminal error (including io.EOF)
	busy    []atomic.Int64
}

type scanItem struct {
	seq  int
	blob []byte
	size int64
}

type decodeItem struct {
	seq   int
	frame *Frame
	size  int64
	err   error
}

// pdMetrics are the optional xtc.decode.* runtime metrics.
type pdMetrics struct {
	frames  *metrics.Counter
	ns      *metrics.Histogram
	workers *metrics.Gauge
}

// DefaultWorkers is the worker count selected for n <= 0: bounded by the
// machine's cores and by GOMAXPROCS (so a capped scheduler caps the pool).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	n = runtime.NumCPU()
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewParallelReader returns a reader over r decoding on `workers` goroutines
// (<=0 selects DefaultWorkers).
func NewParallelReader(r io.Reader, workers int) *ParallelReader {
	workers = DefaultWorkers(workers)
	return &ParallelReader{
		r:       r,
		workers: workers,
		pending: make(map[int]decodeItem),
		busy:    make([]atomic.Int64, workers),
	}
}

// SetMetrics records xtc.decode.* runtime metrics into reg. Call before the
// first ReadFrame.
func (p *ParallelReader) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.pm = pdMetrics{
		frames:  reg.Counter("xtc.decode.frames"),
		ns:      reg.Histogram("xtc.decode.ns"),
		workers: reg.Gauge("xtc.decode.workers"),
	}
}

// Workers returns the size of the decode pool.
func (p *ParallelReader) Workers() int { return p.workers }

// WorkerBusy returns each worker's accumulated wall-clock decode time. It is
// safe to call at any point; mid-stream values are snapshots.
func (p *ParallelReader) WorkerBusy() []time.Duration {
	out := make([]time.Duration, len(p.busy))
	for i := range p.busy {
		out[i] = time.Duration(p.busy[i].Load())
	}
	return out
}

func (p *ParallelReader) start() {
	p.started = true
	p.work = make(chan scanItem, p.workers)
	p.results = make(chan decodeItem, p.workers+1)
	p.quit = make(chan struct{})
	p.pm.workers.Set(int64(p.workers))

	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := range p.work {
				t0 := time.Now()
				f, err := decodeBytes(it.blob)
				ns := time.Since(t0).Nanoseconds()
				putBytes(it.blob)
				p.busy[w].Add(ns)
				if p.Observe != nil {
					p.Observe(ns)
				}
				p.pm.ns.Observe(ns)
				p.pm.frames.Inc()
				select {
				case p.results <- decodeItem{seq: it.seq, frame: f, size: it.size, err: err}:
				case <-p.quit:
					return
				}
			}
		}(w)
	}

	// Scanner: frame boundaries only; the terminal error (io.EOF included)
	// travels through the results channel with its sequence number, so the
	// consumer surfaces it only after every preceding frame.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := NewScanner(p.r)
		seq := 0
		for {
			blob, err := sc.Next()
			if err != nil {
				close(p.work)
				select {
				case p.results <- decodeItem{seq: seq, err: err}:
				case <-p.quit:
				}
				return
			}
			owned := getBytes(len(blob))
			copy(owned, blob)
			select {
			case p.work <- scanItem{seq: seq, blob: owned, size: int64(len(blob))}:
			case <-p.quit:
				close(p.work)
				return
			}
			seq++
		}
	}()

	go func() {
		wg.Wait()
		close(p.results)
	}()
}

// ReadFrameSize decodes the next frame and reports its encoded byte length.
// Semantics match Reader.ReadFrame: io.EOF at a clean end of stream,
// io.ErrUnexpectedEOF for truncation. After any error the reader is done and
// returns that error forever.
func (p *ParallelReader) ReadFrameSize() (*Frame, int64, error) {
	if p.err != nil {
		return nil, 0, p.err
	}
	if !p.started {
		p.start()
	}
	for {
		if d, ok := p.pending[p.next]; ok {
			delete(p.pending, p.next)
			if d.err != nil {
				p.err = d.err
				p.Close()
				return nil, 0, d.err
			}
			p.next++
			return d.frame, d.size, nil
		}
		d, ok := <-p.results
		if !ok {
			p.err = fmt.Errorf("xtc: parallel reader closed mid-stream")
			return nil, 0, p.err
		}
		p.pending[d.seq] = d
	}
}

// ReadFrame decodes the next frame, identically to Reader.ReadFrame.
func (p *ParallelReader) ReadFrame() (*Frame, error) {
	f, _, err := p.ReadFrameSize()
	return f, err
}

// ReadAll decodes every frame in the stream.
func (p *ParallelReader) ReadAll() ([]*Frame, error) {
	var frames []*Frame
	for {
		f, err := p.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// Close stops the scanner and the worker pool. It is idempotent and safe to
// call mid-stream; subsequent reads return an error.
func (p *ParallelReader) Close() error {
	if !p.started {
		p.started = true
		if p.err == nil {
			p.err = fmt.Errorf("xtc: parallel reader closed")
		}
		return nil
	}
	p.once.Do(func() {
		close(p.quit)
		// Drain so the closer goroutine's wg.Wait can finish even if
		// workers were blocked sending.
		go func() {
			for range p.results {
			}
		}()
	})
	if p.err == nil {
		p.err = fmt.Errorf("xtc: parallel reader closed")
	}
	return nil
}
