package xtc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Index maps frame numbers to byte offsets in a trajectory stream, enabling
// the random frame access that interactive playback needs ("replaying the
// frames back and forth", Section 2.1 of the paper).
type Index struct {
	offsets []int64 // offsets[i] = start of frame i
	sizes   []int64 // encoded byte length of frame i
	natoms  []int32
	crcs    []uint32 // optional per-frame CRC32C (empty on legacy indices)
}

// BuildIndex scans a trajectory stream once and records every frame's
// offset without decompressing coordinate payloads.
func BuildIndex(r io.ReaderAt, size int64) (*Index, error) {
	idx := &Index{}
	var off int64
	var head [headerLen + 4*10]byte
	for off < size {
		n, err := r.ReadAt(head[:headerLen], off)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("xtc: index at offset %d: %w", off, err)
		}
		if n < headerLen {
			return nil, fmt.Errorf("xtc: truncated frame header at offset %d", off)
		}
		magic := int32(binary.BigEndian.Uint32(head[0:]))
		natoms := int32(binary.BigEndian.Uint32(head[4:]))
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count at offset %d", off)
		}
		var frameLen int64
		switch magic {
		case MagicRaw:
			frameLen = headerLen + int64(natoms)*12
		case MagicCompressed:
			if natoms <= smallAtomThreshold {
				frameLen = headerLen + int64(natoms)*12
				break
			}
			// Read the coord metadata to find the blob length.
			if _, err := r.ReadAt(head[headerLen:headerLen+36], off+headerLen); err != nil {
				return nil, fmt.Errorf("xtc: index metadata at offset %d: %w", off, err)
			}
			blobLen := int64(binary.BigEndian.Uint32(head[headerLen+32:]))
			padded := blobLen + (4-blobLen%4)%4
			frameLen = headerLen + 36 + padded
		default:
			return nil, fmt.Errorf("%w: %d at offset %d", ErrBadMagic, magic, off)
		}
		if off+frameLen > size {
			return nil, fmt.Errorf("xtc: frame %d overruns stream (%d+%d > %d)",
				len(idx.offsets), off, frameLen, size)
		}
		idx.offsets = append(idx.offsets, off)
		idx.sizes = append(idx.sizes, frameLen)
		idx.natoms = append(idx.natoms, natoms)
		off += frameLen
	}
	return idx, nil
}

// BuildIndexChecksummed is BuildIndex plus a second pass that reads every
// frame's bytes and records its CRC32C, producing a v2 (checksummed) index
// from an existing stream — the recovery path uses it to rebuild the index
// a crash destroyed.
func BuildIndexChecksummed(r io.ReaderAt, size int64) (*Index, error) {
	idx, err := BuildIndex(r, size)
	if err != nil {
		return nil, err
	}
	idx.crcs = make([]uint32, idx.Frames())
	for i := range idx.crcs {
		buf := getBytes(int(idx.sizes[i]))
		if _, err := r.ReadAt(buf, idx.offsets[i]); err != nil && err != io.EOF {
			putBytes(buf)
			return nil, fmt.Errorf("xtc: checksum frame %d: %w", i, err)
		}
		idx.crcs[i] = CRC32C(buf)
		putBytes(buf)
	}
	return idx, nil
}

// IndexBuilder accumulates an Index while frames are being written, so the
// writer side can persist it without re-scanning.
type IndexBuilder struct {
	idx Index
	off int64
}

// Add records the next frame's encoded length and atom count.
func (b *IndexBuilder) Add(frameLen int64, natoms int) {
	b.idx.offsets = append(b.idx.offsets, b.off)
	b.idx.sizes = append(b.idx.sizes, frameLen)
	b.idx.natoms = append(b.idx.natoms, int32(natoms))
	b.off += frameLen
}

// AddWithCRC is Add plus the frame's CRC32C; mixing Add and AddWithCRC in
// one builder leaves the index without checksums (they must cover every
// frame to be trustworthy, so a partial set is dropped at Marshal time).
func (b *IndexBuilder) AddWithCRC(frameLen int64, natoms int, crc uint32) {
	b.Add(frameLen, natoms)
	b.idx.crcs = append(b.idx.crcs, crc)
}

// Index returns the built index.
func (b *IndexBuilder) Index() *Index { return &b.idx }

// Frames returns the number of indexed frames.
func (x *Index) Frames() int { return len(x.offsets) }

// Offset returns frame i's byte offset.
func (x *Index) Offset(i int) int64 { return x.offsets[i] }

// Size returns frame i's encoded byte length.
func (x *Index) Size(i int) int64 { return x.sizes[i] }

// NAtoms returns frame i's atom count.
func (x *Index) NAtoms(i int) int { return int(x.natoms[i]) }

// HasChecksums reports whether the index carries a CRC32C for every frame.
func (x *Index) HasChecksums() bool {
	return len(x.crcs) == len(x.offsets) && len(x.offsets) > 0
}

// CRC returns frame i's CRC32C. Only valid when HasChecksums is true.
func (x *Index) CRC(i int) uint32 { return x.crcs[i] }

// TotalBytes returns the stream length covered by the index.
func (x *Index) TotalBytes() int64 {
	if len(x.offsets) == 0 {
		return 0
	}
	last := len(x.offsets) - 1
	return x.offsets[last] + x.sizes[last]
}

// RandomAccessReader reads individual frames by number. ReadFrameAt is safe
// for concurrent use (io.ReaderAt is concurrency-safe by contract and the
// scratch buffers are pooled), which lets playback prefetchers decode ahead
// on background workers.
type RandomAccessReader struct {
	r   io.ReaderAt
	idx *Index
}

// NewRandomAccessReader returns a reader over an indexed stream.
func NewRandomAccessReader(r io.ReaderAt, idx *Index) *RandomAccessReader {
	return &RandomAccessReader{r: r, idx: idx}
}

// Frames returns the frame count.
func (ra *RandomAccessReader) Frames() int { return ra.idx.Frames() }

// ConcurrentFrameReads reports that ReadFrameAt may be called from multiple
// goroutines at once.
func (ra *RandomAccessReader) ConcurrentFrameReads() bool { return true }

// ReadFrameAt decodes frame i.
func (ra *RandomAccessReader) ReadFrameAt(i int) (*Frame, error) {
	if i < 0 || i >= ra.idx.Frames() {
		return nil, fmt.Errorf("xtc: frame %d out of range [0,%d)", i, ra.idx.Frames())
	}
	n := ra.idx.Size(i)
	buf := getBytes(int(n))
	defer putBytes(buf)
	if _, err := ra.r.ReadAt(buf, ra.idx.Offset(i)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("xtc: read frame %d: %w", i, err)
	}
	return decodeBytes(buf)
}
