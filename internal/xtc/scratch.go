package xtc

import (
	"sync"

	"repro/internal/xdr"
)

// Scratch pools for the codec hot path. Encoding and decoding a frame both
// need an O(natoms) []int32 workspace plus an xdr.Reader, and a trajectory
// touches those once per frame — pooling them removes the dominant per-frame
// allocations without changing the public API (decoded Frames are still
// freshly allocated, since callers retain them).

// intsPool recycles quantization workspaces. Entries are stored as
// *[]int32 so Put does not allocate an interface box per cycle.
var intsPool sync.Pool

// getInts returns an []int32 of length n, reusing pooled capacity.
func getInts(n int) []int32 {
	if v, _ := intsPool.Get().(*[]int32); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]int32, n)
}

func putInts(s []int32) {
	s = s[:0]
	intsPool.Put(&s)
}

// bytesPool recycles frame-sized byte buffers (scanner blobs, random-access
// reads).
var bytesPool sync.Pool

// getBytes returns a []byte of length n, reusing pooled capacity.
func getBytes(n int) []byte {
	if v, _ := bytesPool.Get().(*[]byte); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]byte, n)
}

func putBytes(s []byte) {
	s = s[:0]
	bytesPool.Put(&s)
}

// bitWriterPool recycles the encode-side bit writers: without it every
// compressed frame allocates a natoms*3-byte buffer — once per frame per
// tagged subset on the ingest write path.
var bitWriterPool = sync.Pool{New: func() any { return xdr.NewBitWriter(1 << 16) }}

// getBitWriter returns an empty BitWriter, reusing pooled capacity.
func getBitWriter() *xdr.BitWriter {
	w := bitWriterPool.Get().(*xdr.BitWriter)
	w.Reset()
	return w
}

func putBitWriter(w *xdr.BitWriter) { bitWriterPool.Put(w) }

// xdrReaderPool recycles xdr.Readers so each decoded frame does not allocate
// one.
var xdrReaderPool = sync.Pool{New: func() any { return xdr.NewReader(nil) }}

// decodeBytes decodes one encoded frame from p using a pooled xdr.Reader.
func decodeBytes(p []byte) (*Frame, error) {
	rd := xdrReaderPool.Get().(*xdr.Reader)
	rd.Reset(p)
	f, err := DecodeFrame(rd)
	rd.Reset(nil)
	xdrReaderPool.Put(rd)
	return f, err
}
