package xtc

import "repro/internal/xdr"

// packInts combines vals (each in [0, sizes[i])) into one multi-precision
// integer N = ((vals[0]*sizes[1]) + vals[1])*sizes[2] + vals[2] ... and
// writes exactly nbits bits of it to w, most-significant bit first.
// nbits must come from sizeOfInts(sizes). Combined values of up to 64 bits
// — every delta run and almost every absolute triplet — take a fused fast
// path: two uint64 multiplies and one accumulator write, the exact inverse
// of unpackInts' divide fast path.
func packInts(w *xdr.BitWriter, nbits uint, sizes, vals []uint32) {
	if nbits <= 64 && len(sizes) == 3 {
		v := (uint64(vals[0])*uint64(sizes[1])+uint64(vals[1]))*uint64(sizes[2]) + uint64(vals[2])
		w.WriteBits64(v, nbits)
		return
	}
	packIntsBig(w, nbits, sizes, vals)
}

// packIntsBig is the general byte-wise multi-precision path for combined
// values wider than 64 bits (huge per-frame bounding boxes).
func packIntsBig(w *xdr.BitWriter, nbits uint, sizes, vals []uint32) {
	// Multi-precision accumulate in little-endian bytes.
	var bytes [16]byte
	nbytes := 1
	bytes[0] = 0
	for i, v := range vals {
		// bytes = bytes*sizes[i] + v
		carry := uint64(v)
		for j := 0; j < nbytes; j++ {
			carry += uint64(bytes[j]) * uint64(sizes[i])
			bytes[j] = byte(carry)
			carry >>= 8
		}
		for carry != 0 {
			bytes[nbytes] = byte(carry)
			carry >>= 8
			nbytes++
		}
	}
	// Emit as big-endian using exactly nbits bits.
	total := int((nbits + 7) / 8)
	var be [16]byte
	for i := 0; i < total; i++ {
		if j := total - 1 - i; j < nbytes {
			be[i] = bytes[j]
		}
	}
	w.WriteBitsBig(be[:total], nbits)
}

// unpackInts reads nbits bits from r and splits them back into len(sizes)
// values via repeated division, the inverse of packInts. Combined values of
// up to 64 bits — every delta run and almost every absolute triplet — take
// a fused fast path: one accumulator read plus two uint64 divisions, instead
// of byte-at-a-time multi-precision arithmetic.
func unpackInts(r *xdr.BitReader, nbits uint, sizes []uint32, vals []uint32) {
	if nbits <= 64 && len(sizes) == 3 {
		v := r.ReadBits64(nbits)
		s1, s2 := uint64(sizes[1]), uint64(sizes[2])
		q := v / s2
		vals[2] = uint32(v - q*s2)
		v = q / s1
		vals[1] = uint32(q - v*s1)
		vals[0] = uint32(v)
		return
	}
	unpackIntsBig(r, nbits, sizes, vals)
}

// unpackIntsBig is the general multi-precision path for combined values
// wider than 64 bits (huge per-frame bounding boxes).
func unpackIntsBig(r *xdr.BitReader, nbits uint, sizes []uint32, vals []uint32) {
	total := int((nbits + 7) / 8)
	var be [16]byte
	r.ReadBitsBig(be[:total], nbits)
	// Convert to little-endian working form.
	var bytes [16]byte
	for i := 0; i < total; i++ {
		bytes[i] = be[total-1-i]
	}
	nbytes := total
	for i := len(sizes) - 1; i > 0; i-- {
		// vals[i] = bytes % sizes[i]; bytes /= sizes[i]
		var rem uint64
		for j := nbytes - 1; j >= 0; j-- {
			rem = rem<<8 | uint64(bytes[j])
			q := rem / uint64(sizes[i])
			bytes[j] = byte(q)
			rem -= q * uint64(sizes[i])
		}
		vals[i] = uint32(rem)
	}
	var v uint64
	for j := nbytes - 1; j >= 0; j-- {
		v = v<<8 | uint64(bytes[j])
	}
	vals[0] = uint32(v)
}
