package xtc

import (
	"io"
	"math"

	"repro/internal/xdr"
)

// Writer appends frames to an underlying io.Writer as a concatenation of
// self-describing XDR frame blocks, like an .xtc file.
type Writer struct {
	w          io.Writer
	scratch    *xdr.Writer
	compressed bool
	frames     int
	bytes      int64
}

// NewWriter returns a Writer emitting compressed frames.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, scratch: xdr.NewWriter(4096), compressed: true}
}

// NewRawWriter returns a Writer emitting uncompressed (raw) frames.
func NewRawWriter(w io.Writer) *Writer {
	return &Writer{w: w, scratch: xdr.NewWriter(4096)}
}

// WriteFrame appends one frame.
func (w *Writer) WriteFrame(f *Frame) error {
	w.scratch.Reset()
	if w.compressed {
		if err := f.AppendEncoded(w.scratch); err != nil {
			return err
		}
	} else {
		f.AppendRaw(w.scratch)
	}
	n, err := w.w.Write(w.scratch.Bytes())
	w.bytes += int64(n)
	if err != nil {
		return err
	}
	w.frames++
	return nil
}

// Frames returns the number of frames written.
func (w *Writer) Frames() int { return w.frames }

// BytesWritten returns the total encoded bytes emitted.
func (w *Writer) BytesWritten() int64 { return w.bytes }

// Reader decodes frames sequentially from an io.Reader. It is a Scanner
// (cheap framing) followed by an in-place decode of each scanned blob.
type Reader struct {
	s *Scanner
}

// NewReader returns a streaming frame reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{s: NewScanner(r)}
}

// headerLen is magic+natoms+step+time+box = 4*(4+9) bytes.
const headerLen = 4 * (4 + 9)

// ReadFrame decodes the next frame. It returns io.EOF cleanly at the end of
// the stream and io.ErrUnexpectedEOF for a truncated frame.
func (r *Reader) ReadFrame() (*Frame, error) {
	blob, err := r.s.Next()
	if err != nil {
		return nil, err
	}
	return decodeBytes(blob)
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll decodes every frame in the stream.
func (r *Reader) ReadAll() ([]*Frame, error) {
	var frames []*Frame
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// MaxError returns the worst-case absolute coordinate error introduced by
// quantizing at the given precision (half a quantum).
func MaxError(precision float32) float64 {
	if precision <= 0 {
		precision = DefaultPrecision
	}
	return 0.5 / float64(precision)
}

// CompressionRatio reports raw/compressed given the two byte sizes,
// guarding against division by zero.
func CompressionRatio(rawBytes, compressedBytes int64) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(rawBytes) / float64(compressedBytes)
}

// RawFrameSize returns the encoded byte size of an uncompressed frame with
// the given atom count.
func RawFrameSize(natoms int) int64 {
	return int64(headerLen + natoms*12)
}
