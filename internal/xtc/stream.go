package xtc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/xdr"
)

// Writer appends frames to an underlying io.Writer as a concatenation of
// self-describing XDR frame blocks, like an .xtc file.
type Writer struct {
	w          io.Writer
	scratch    *xdr.Writer
	compressed bool
	frames     int
	bytes      int64
}

// NewWriter returns a Writer emitting compressed frames.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, scratch: xdr.NewWriter(4096), compressed: true}
}

// NewRawWriter returns a Writer emitting uncompressed (raw) frames.
func NewRawWriter(w io.Writer) *Writer {
	return &Writer{w: w, scratch: xdr.NewWriter(4096)}
}

// WriteFrame appends one frame.
func (w *Writer) WriteFrame(f *Frame) error {
	w.scratch.Reset()
	if w.compressed {
		if err := f.AppendEncoded(w.scratch); err != nil {
			return err
		}
	} else {
		f.AppendRaw(w.scratch)
	}
	n, err := w.w.Write(w.scratch.Bytes())
	w.bytes += int64(n)
	if err != nil {
		return err
	}
	w.frames++
	return nil
}

// Frames returns the number of frames written.
func (w *Writer) Frames() int { return w.frames }

// BytesWritten returns the total encoded bytes emitted.
func (w *Writer) BytesWritten() int64 { return w.bytes }

// Reader decodes frames sequentially from an io.Reader.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader returns a streaming frame reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// grow extends r.buf by n bytes filled from the stream and returns the
// complete buffer so far. The returned slice stays valid until the next
// ReadFrame call.
func (r *Reader) grow(n int) ([]byte, error) {
	old := len(r.buf)
	if cap(r.buf) < old+n {
		nb := make([]byte, old, old+n)
		copy(nb, r.buf)
		r.buf = nb
	}
	r.buf = r.buf[:old+n]
	if _, err := io.ReadFull(r.br, r.buf[old:]); err != nil {
		r.buf = r.buf[:old]
		return nil, err
	}
	return r.buf, nil
}

// headerLen is magic+natoms+step+time+box = 4*(4+9) bytes.
const headerLen = 4 * (4 + 9)

// ReadFrame decodes the next frame. It returns io.EOF cleanly at the end of
// the stream and io.ErrUnexpectedEOF for a truncated frame.
func (r *Reader) ReadFrame() (*Frame, error) {
	head, err := r.br.Peek(4)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	magic := int32(binary.BigEndian.Uint32(head))
	r.buf = r.buf[:0]
	switch magic {
	case MagicCompressed:
		whole, err := r.grow(headerLen)
		if err != nil {
			return nil, unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[4:])))
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		if natoms <= smallAtomThreshold {
			if whole, err = r.grow(natoms * 12); err != nil {
				return nil, unexpected(err)
			}
			return DecodeFrame(xdr.NewReader(whole))
		}
		// precision + minint[3] + sizeint[3] + smallidx + bloblen
		if whole, err = r.grow(4 * 9); err != nil {
			return nil, unexpected(err)
		}
		blobLen := int(binary.BigEndian.Uint32(whole[headerLen+32:]))
		padded := blobLen + (4-blobLen%4)%4
		if whole, err = r.grow(padded); err != nil {
			return nil, unexpected(err)
		}
		return DecodeFrame(xdr.NewReader(whole))

	case MagicRaw:
		whole, err := r.grow(headerLen)
		if err != nil {
			return nil, unexpected(err)
		}
		natoms := int(int32(binary.BigEndian.Uint32(whole[4:])))
		if natoms < 0 {
			return nil, fmt.Errorf("xtc: negative atom count %d", natoms)
		}
		if whole, err = r.grow(natoms * 12); err != nil {
			return nil, unexpected(err)
		}
		return DecodeFrame(xdr.NewReader(whole))

	default:
		return nil, fmt.Errorf("%w: %d", ErrBadMagic, magic)
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll decodes every frame in the stream.
func (r *Reader) ReadAll() ([]*Frame, error) {
	var frames []*Frame
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// MaxError returns the worst-case absolute coordinate error introduced by
// quantizing at the given precision (half a quantum).
func MaxError(precision float32) float64 {
	if precision <= 0 {
		precision = DefaultPrecision
	}
	return 0.5 / float64(precision)
}

// CompressionRatio reports raw/compressed given the two byte sizes,
// guarding against division by zero.
func CompressionRatio(rawBytes, compressedBytes int64) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(rawBytes) / float64(compressedBytes)
}

// RawFrameSize returns the encoded byte size of an uncompressed frame with
// the given atom count.
func RawFrameSize(natoms int) int64 {
	return int64(headerLen + natoms*12)
}
