package xtc

import "hash/crc32"

// castagnoli is the CRC32C polynomial table — the same checksum iSCSI,
// ext4 metadata, and Btrfs use, chosen for its hardware support (SSE4.2
// CRC32 instruction) and good error-detection properties on storage-sized
// payloads.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the CRC32C checksum of p.
func CRC32C(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// CRC32CUpdate continues a running CRC32C over p, so a writer can maintain
// a whole-stream checksum incrementally while also recording per-frame
// checksums.
func CRC32CUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// DecodeFrameBytes decodes one encoded frame blob (as produced by
// Writer.WriteFrame, or sliced out of a stream at an Index offset) using
// the pooled decode scratch.
func DecodeFrameBytes(p []byte) (*Frame, error) { return decodeBytes(p) }
