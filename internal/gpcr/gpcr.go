// Package gpcr builds synthetic G-protein-coupled-receptor simulation
// systems shaped like the CB1 dataset the paper evaluates: a membrane
// protein embedded in a lipid bilayer, solvated in water with counter-ions
// and a bound ligand.
//
// The builder is deterministic for a given seed and is parameterized so the
// protein's share of the raw trajectory bytes can be tuned to the paper's
// observed 43.5-49% (Tables 1, 2 and 6). Coordinates are in nanometers
// (trajectory convention); the PDB writer converts to Ångströms.
package gpcr

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/pdb"
	"repro/internal/xtc"
)

// Config describes the composition of a synthetic system.
type Config struct {
	ProteinResidues int     // residues per chain (8 heavy atoms each)
	Chains          int     // protein chains
	LigandAtoms     int     // atoms in the bound ligand
	Lipids          int     // bilayer lipid molecules (lipidAtoms each)
	Waters          int     // water molecules (3 atoms each)
	IonPairs        int     // Na+/Cl- pairs
	BoxNM           float64 // cubic box edge, nm
	Seed            int64
}

// Atoms-per-molecule constants for the coarse models used here.
const (
	atomsPerResidue = 8
	atomsPerWater   = 3
	atomsPerLipid   = 50
)

// Default returns the laptop-scale default system: ~43,500 atoms with a
// ~42.5% protein fraction, matching the paper's per-frame raw volume
// (327 MB / 626 frames ≈ 522 KB ≈ 43.5k atoms).
func Default() Config {
	return Config{
		ProteinResidues: 1156, // 2 chains * 1156 * 8 = 18,496 protein atoms
		Chains:          2,
		LigandAtoms:     60,
		Lipids:          120,  // 6,000 lipid atoms
		Waters:          6250, // 18,750 water atoms
		IonPairs:        100,  // 200 ion atoms
		BoxNM:           8,    // dense solvation: ~0.43 nm water spacing
		Seed:            42,
	}
}

// Scaled returns Default shrunk by factor (>= 1). Scaled(10) is a ~4.3k-atom
// system with the same composition, for fast tests and benches.
func Scaled(factor int) Config {
	if factor < 1 {
		factor = 1
	}
	c := Default()
	c.ProteinResidues = maxInt(1, c.ProteinResidues/factor)
	c.LigandAtoms = maxInt(1, c.LigandAtoms/factor)
	c.Lipids = maxInt(1, c.Lipids/factor)
	c.Waters = maxInt(1, c.Waters/factor)
	c.IonPairs = maxInt(1, c.IonPairs/factor)
	c.BoxNM = math.Max(3, c.BoxNM/math.Cbrt(float64(factor)))
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NAtoms returns the total atom count the config will produce.
func (c Config) NAtoms() int {
	return c.Chains*c.ProteinResidues*atomsPerResidue +
		c.LigandAtoms +
		c.Lipids*atomsPerLipid +
		c.Waters*atomsPerWater +
		c.IonPairs*2
}

// ProteinAtoms returns the number of protein atoms.
func (c Config) ProteinAtoms() int { return c.Chains * c.ProteinResidues * atomsPerResidue }

// ProteinFraction returns the protein share of atoms (= share of raw bytes).
func (c Config) ProteinFraction() float64 {
	return float64(c.ProteinAtoms()) / float64(c.NAtoms())
}

// System is a built synthetic system: a structure file plus initial
// coordinates in nm.
type System struct {
	Config    Config
	Structure *pdb.Structure
	Coords    []xtc.Vec3 // nm, same order as Structure.Atoms
	Box       float32    // nm
}

// Build constructs the system deterministically.
func (c Config) Build() (*System, error) {
	if c.Chains <= 0 || c.ProteinResidues <= 0 || c.BoxNM <= 0 {
		return nil, fmt.Errorf("gpcr: invalid config %+v", c)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	s := &System{
		Config:    c,
		Structure: &pdb.Structure{Title: "SYNTHETIC CB1-LIKE GPCR SYSTEM"},
		Box:       float32(c.BoxNM),
	}
	box := c.BoxNM

	addAtom := func(name, res string, het bool, chain byte, resSeq int, p xtc.Vec3, elem string) {
		a := pdb.Atom{
			Serial:  len(s.Structure.Atoms) + 1,
			Name:    name,
			ResName: res,
			ChainID: chain,
			ResSeq:  resSeq,
			// PDB stores Ångströms.
			X: float64(p[0]) * 10, Y: float64(p[1]) * 10, Z: float64(p[2]) * 10,
			Element: elem,
			HetAtm:  het,
		}
		a.Category = pdb.Classify(res, het)
		s.Structure.Atoms = append(s.Structure.Atoms, a)
		s.Coords = append(s.Coords, p)
	}

	residues := [...]string{"ALA", "ARG", "LEU", "PHE", "SER", "TRP", "VAL", "GLY", "ILE", "THR"}
	names := [...]string{"N", "CA", "C", "O", "CB", "CG", "CD", "CE"}
	elems := [...]string{"N", "C", "C", "O", "C", "C", "C", "C"}

	// Protein: each chain is a compact self-avoiding-ish random walk around
	// the box center (a folded globule spanning the membrane).
	for ch := 0; ch < c.Chains; ch++ {
		chain := byte('A' + ch)
		center := [3]float64{box / 2, box / 2, box / 2}
		pos := [3]float64{
			center[0] + rng.NormFloat64()*0.5,
			center[1] + rng.NormFloat64()*0.5,
			center[2] + rng.NormFloat64()*0.5,
		}
		radius := math.Cbrt(float64(c.ProteinResidues)) * 0.25
		for r := 0; r < c.ProteinResidues; r++ {
			// Backbone random walk with a restoring pull toward the center.
			for d := 0; d < 3; d++ {
				pos[d] += rng.NormFloat64() * 0.35
				pos[d] += (center[d] - pos[d]) * 0.08
				lim := radius + 1
				if pos[d] > center[d]+lim {
					pos[d] = center[d] + lim
				}
				if pos[d] < center[d]-lim {
					pos[d] = center[d] - lim
				}
			}
			res := residues[(ch*7+r)%len(residues)]
			for a := 0; a < atomsPerResidue; a++ {
				p := xtc.Vec3{
					float32(pos[0] + rng.NormFloat64()*0.12),
					float32(pos[1] + rng.NormFloat64()*0.12),
					float32(pos[2] + rng.NormFloat64()*0.12),
				}
				addAtom(names[a], res, false, chain, r+1, p, elems[a])
			}
		}
	}

	// Ligand: a tight cluster in the receptor's binding pocket.
	pocket := [3]float64{box/2 + 0.8, box / 2, box / 2}
	for i := 0; i < c.LigandAtoms; i++ {
		p := xtc.Vec3{
			float32(pocket[0] + rng.NormFloat64()*0.25),
			float32(pocket[1] + rng.NormFloat64()*0.25),
			float32(pocket[2] + rng.NormFloat64()*0.25),
		}
		addAtom("C"+itoa(i%9+1), "LIG", true, 'L', 1, p, "C")
	}

	// Lipids: two leaflets of a bilayer spanning the XY plane at the box
	// middle. Each lipid is a vertical tail of atoms.
	nPerLeaflet := (c.Lipids + 1) / 2
	side := int(math.Ceil(math.Sqrt(float64(nPerLeaflet))))
	if side < 1 {
		side = 1
	}
	spacing := box / float64(side)
	for l := 0; l < c.Lipids; l++ {
		leaflet := l % 2
		k := l / 2
		gx := float64(k%side)*spacing + spacing/2
		gy := float64(k/side%side)*spacing + spacing/2
		z0 := box/2 - 1.9
		dir := 1.0
		if leaflet == 1 {
			z0 = box/2 + 1.9
			dir = -1.0
		}
		for a := 0; a < atomsPerLipid; a++ {
			p := xtc.Vec3{
				float32(gx + rng.NormFloat64()*0.08),
				float32(gy + rng.NormFloat64()*0.08),
				float32(z0 + dir*float64(a)*0.035 + rng.NormFloat64()*0.03),
			}
			name := "C" + itoa(a%9+1)
			elem := "C"
			if a == 0 {
				name, elem = "P", "P"
			}
			addAtom(name, "POPC", false, 'M', l+1, p, elem)
		}
	}

	// Waters: jittered grid filling the box outside the membrane slab.
	wside := int(math.Ceil(math.Cbrt(float64(c.Waters))))
	if wside < 1 {
		wside = 1
	}
	wsp := box / float64(wside)
	placed := 0
	for i := 0; placed < c.Waters; i++ {
		gx := float64(i%wside)*wsp + wsp/2
		gy := float64(i/wside%wside)*wsp + wsp/2
		gz := float64(i/(wside*wside)%wside)*wsp + wsp/2
		if i >= wside*wside*wside {
			// Grid exhausted (membrane exclusion ate slots): place randomly.
			gx, gy, gz = rng.Float64()*box, rng.Float64()*box, rng.Float64()*box
		} else if gz > box/2-2.2 && gz < box/2+2.2 {
			continue // inside the membrane slab
		}
		o := [3]float64{
			gx + rng.NormFloat64()*0.05,
			gy + rng.NormFloat64()*0.05,
			gz + rng.NormFloat64()*0.05,
		}
		addAtom("OW", "SOL", false, 'W', placed+1,
			xtc.Vec3{float32(o[0]), float32(o[1]), float32(o[2])}, "O")
		for h := 0; h < atomsPerWater-1; h++ {
			p := xtc.Vec3{
				float32(o[0] + rng.NormFloat64()*0.06),
				float32(o[1] + rng.NormFloat64()*0.06),
				float32(o[2] + rng.NormFloat64()*0.06),
			}
			addAtom("HW"+itoa(h+1), "SOL", false, 'W', placed+1, p, "H")
		}
		placed++
	}

	// Ions: scattered through the solvent.
	for i := 0; i < c.IonPairs; i++ {
		for j, kind := range [2]struct{ res, elem string }{{"SOD", "NA"}, {"CLA", "CL"}} {
			p := xtc.Vec3{
				float32(rng.Float64() * box),
				float32(rng.Float64() * box),
				float32(rng.Float64() * box),
			}
			addAtom(kind.elem, kind.res, true, 'I', i*2+j+1, p, kind.elem)
		}
	}

	if got := len(s.Coords); got != c.NAtoms() {
		return nil, fmt.Errorf("gpcr: built %d atoms, config promises %d", got, c.NAtoms())
	}
	return s, nil
}

func itoa(i int) string {
	return string(rune('0' + i))
}

// InitialFrame returns frame zero of the system's trajectory.
func (s *System) InitialFrame() *xtc.Frame {
	f := &xtc.Frame{
		Step:      0,
		Time:      0,
		Coords:    make([]xtc.Vec3, len(s.Coords)),
		Precision: xtc.DefaultPrecision,
	}
	copy(f.Coords, s.Coords)
	f.Box[0], f.Box[4], f.Box[8] = s.Box, s.Box, s.Box
	return f
}
