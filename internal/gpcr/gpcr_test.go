package gpcr

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/pdb"
	"repro/internal/xdr"
	"repro/internal/xtc"
)

func TestDefaultComposition(t *testing.T) {
	c := Default()
	frac := c.ProteinFraction()
	if frac < 0.40 || frac > 0.50 {
		t.Errorf("protein fraction = %.3f, want within the paper's 0.40-0.50", frac)
	}
	// ~43.5k atoms so a raw frame is ~522 KB like the paper's datasets.
	if n := c.NAtoms(); n < 40000 || n > 47000 {
		t.Errorf("NAtoms = %d, want ~43500", n)
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := Scaled(50)
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Coords) != len(b.Coords) {
		t.Fatalf("atom counts differ: %d vs %d", len(a.Coords), len(b.Coords))
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("coordinates differ at atom %d", i)
		}
	}
}

func TestBuildCountsMatchConfig(t *testing.T) {
	for _, factor := range []int{1000, 100, 20} {
		c := Scaled(factor)
		s, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if s.Structure.NAtoms() != c.NAtoms() {
			t.Errorf("factor %d: structure atoms = %d, config = %d",
				factor, s.Structure.NAtoms(), c.NAtoms())
		}
		counts := s.Structure.CategoryCounts()
		if counts[pdb.Protein] != c.ProteinAtoms() {
			t.Errorf("factor %d: protein atoms = %d, want %d",
				factor, counts[pdb.Protein], c.ProteinAtoms())
		}
		if counts[pdb.Water] != c.Waters*atomsPerWater {
			t.Errorf("factor %d: water atoms = %d, want %d",
				factor, counts[pdb.Water], c.Waters*atomsPerWater)
		}
		if counts[pdb.Lipid] != c.Lipids*atomsPerLipid {
			t.Errorf("factor %d: lipid atoms = %d", factor, counts[pdb.Lipid])
		}
		if counts[pdb.Ion] != c.IonPairs*2 {
			t.Errorf("factor %d: ion atoms = %d", factor, counts[pdb.Ion])
		}
		if counts[pdb.Ligand] != c.LigandAtoms {
			t.Errorf("factor %d: ligand atoms = %d", factor, counts[pdb.Ligand])
		}
	}
}

func TestCoordsInsideBox(t *testing.T) {
	s, err := Scaled(20).Build()
	if err != nil {
		t.Fatal(err)
	}
	slack := float32(2.0) // gaussian jitter may poke slightly outside
	for i, p := range s.Coords {
		for d := 0; d < 3; d++ {
			if p[d] < -slack || p[d] > s.Box+slack {
				t.Fatalf("atom %d dim %d = %g outside box [0,%g]", i, d, p[d], s.Box)
			}
		}
	}
}

func TestPDBRoundTripPreservesCategories(t *testing.T) {
	s, err := Scaled(100).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pdb.Write(&buf, s.Structure); err != nil {
		t.Fatal(err)
	}
	parsed, err := pdb.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NAtoms() != s.Structure.NAtoms() {
		t.Fatalf("atoms = %d, want %d", parsed.NAtoms(), s.Structure.NAtoms())
	}
	for i := range parsed.Atoms {
		if parsed.Atoms[i].Category != s.Structure.Atoms[i].Category {
			t.Fatalf("atom %d: category %v != %v (res %q)",
				i, parsed.Atoms[i].Category, s.Structure.Atoms[i].Category,
				parsed.Atoms[i].ResName)
		}
	}
}

func TestInitialFrameCompression(t *testing.T) {
	s, err := Scaled(10).Build()
	if err != nil {
		t.Fatal(err)
	}
	f := s.InitialFrame()
	w := xdr.NewWriter(1 << 20)
	if err := f.AppendEncoded(w); err != nil {
		t.Fatal(err)
	}
	raw := xtc.RawFrameSize(f.NAtoms())
	ratio := xtc.CompressionRatio(raw, int64(w.Len()))
	t.Logf("natoms=%d compressed=%d raw=%d ratio=%.2fx", f.NAtoms(), w.Len(), raw, ratio)
	if ratio < 2.2 {
		t.Errorf("compression ratio %.2f too low for a packed system; want >= 2.2", ratio)
	}
	// And the decode must be lossless to quantization error.
	got, err := xtc.DecodeFrame(xdr.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tol := xtc.MaxError(xtc.DefaultPrecision) + 1e-6
	for i := range f.Coords {
		for d := 0; d < 3; d++ {
			if diff := math.Abs(float64(got.Coords[i][d] - f.Coords[i][d])); diff > tol {
				t.Fatalf("atom %d dim %d error %g > %g", i, d, diff, tol)
			}
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := (Config{}).Build(); err == nil {
		t.Error("empty config should fail to build")
	}
}
