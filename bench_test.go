// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Figures run the analytic engine over the measured
// data model (real codec sizes); Fig 8 and the ablations run the live
// pipeline. Virtual-time results are reported as custom metrics
// (vsec = virtual seconds on the experiment clock) alongside the real
// ns/op of executing the pipeline itself.
package ada_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/blockfs"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpcr"
	"repro/internal/metrics"
	"repro/internal/plfs"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmd"
	"repro/internal/xdr"
	"repro/internal/xtc"
)

var (
	modelOnce sync.Once
	model     *bench.DataModel
	modelErr  error
)

// fullConfig measures the full-size (43.5k-atom) data model once per
// process with the real codec.
func fullConfig(b *testing.B) *bench.Config {
	b.Helper()
	modelOnce.Do(func() {
		model, modelErr = bench.Measure(gpcr.Default(), 6)
	})
	if modelErr != nil {
		b.Fatal(modelErr)
	}
	return &bench.Config{Model: model, Scale: 20, MeasuredFrames: 80}
}

// benchExperiment runs one table/figure end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	cfg := fullConfig(b)
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tbl.Rows) == 0 {
		b.Fatal("empty table")
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)  { benchExperiment(b, "fig9c") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig10c(b *testing.B) { benchExperiment(b, "fig10c") }
func BenchmarkFig10d(b *testing.B) { benchExperiment(b, "fig10d") }

// Extension experiments (not paper figures; see DESIGN.md).
func BenchmarkExtPlayback(b *testing.B) { benchExperiment(b, "ext-playback") }
func BenchmarkExtAmortize(b *testing.B) { benchExperiment(b, "ext-amortize") }

// BenchmarkTurnaroundScenarios reports the headline Fig 7b comparison as
// virtual seconds per scenario at 5,006 frames on the SSD-server model.
func BenchmarkTurnaroundScenarios(b *testing.B) {
	cfg := fullConfig(b)
	for _, sc := range bench.Scenarios {
		b.Run(string(sc), func(b *testing.B) {
			p, err := cluster.NewSSDServer()
			if err != nil {
				b.Fatal(err)
			}
			var pt bench.Point
			for i := 0; i < b.N; i++ {
				pt = bench.RunAnalytic(p, cfg.Model, sc, 5006)
			}
			b.ReportMetric(pt.Turnaround, "vsec")
			b.ReportMetric(float64(pt.MemoryPeak)/1e6, "vMB")
		})
	}
}

// --- Real-codec benchmarks ---------------------------------------------

// stageFrame builds one full-size frame and its encoding.
func stageFrame(b *testing.B) (*xtc.Frame, []byte) {
	b.Helper()
	sys, err := gpcr.Default().Build()
	if err != nil {
		b.Fatal(err)
	}
	f := sys.InitialFrame()
	w := xdr.NewWriter(1 << 21)
	if err := f.AppendEncoded(w); err != nil {
		b.Fatal(err)
	}
	return f, w.Bytes()
}

// BenchmarkXTCEncode measures the real compressor on the full 43.5k-atom
// system (MB/s of raw coordinate data).
func BenchmarkXTCEncode(b *testing.B) {
	f, _ := stageFrame(b)
	w := xdr.NewWriter(1 << 21)
	b.ReportAllocs()
	b.SetBytes(int64(f.NAtoms() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := f.AppendEncoded(w); err != nil {
			b.Fatal(err)
		}
	}
	reportCPUs(b)
}

// reportCPUs records the scheduler width as a benchmark metric. The CI
// regression gate (cmd/benchjson -compare) uses it twice: to undo the
// -GOMAXPROCS name suffix when diffing runs from different machines, and to
// skip speedup assertions the runner lacks the cores to satisfy.
func reportCPUs(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
}

// BenchmarkXTCDecode measures the real decompressor — the rate that
// dominates the paper's turnaround times.
func BenchmarkXTCDecode(b *testing.B) {
	f, raw := stageFrame(b)
	b.ReportAllocs()
	b.SetBytes(int64(f.NAtoms() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xtc.DecodeFrame(xdr.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
	reportCPUs(b)
}

// BenchmarkXTCPrecision sweeps the quantization precision: higher precision
// costs more bits per atom and more codec time. Reported bpa = encoded bits
// per atom.
func BenchmarkXTCPrecision(b *testing.B) {
	sys, err := gpcr.Scaled(4).Build()
	if err != nil {
		b.Fatal(err)
	}
	base := sys.InitialFrame()
	for _, prec := range []float32{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("prec-%g", prec), func(b *testing.B) {
			f := base.Clone()
			f.Precision = prec
			w := xdr.NewWriter(1 << 21)
			b.SetBytes(int64(f.NAtoms() * 12))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				if err := f.AppendEncoded(w); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.Len()*8)/float64(f.NAtoms()), "bpa")
		})
	}
}

// --- Parallel decode + prefetch benches ----------------------------------

// decodeStream builds a jittered multi-frame compressed stream once per
// process, plus its total raw coordinate payload for MB/s reporting.
var (
	decOnce   sync.Once
	decStream []byte
	decRaw    int64
	decErr    error
)

func parallelDecodeStream(b *testing.B) ([]byte, int64) {
	b.Helper()
	decOnce.Do(func() {
		sys, err := gpcr.Scaled(4).Build()
		if err != nil {
			decErr = err
			return
		}
		f := sys.InitialFrame()
		rng := rand.New(rand.NewSource(5))
		var buf bytes.Buffer
		w := xtc.NewWriter(&buf)
		// 64 frames ≈ 9 MB encoded: enough for several 256 KB decode
		// batches per worker, so the batched pipeline is actually
		// exercised rather than degenerating to one work item.
		const frames = 64
		for k := 0; k < frames; k++ {
			f.Step = int32(k)
			for i := range f.Coords {
				for d := 0; d < 3; d++ {
					f.Coords[i][d] += float32(rng.NormFloat64() * 0.005)
				}
			}
			if err := w.WriteFrame(f); err != nil {
				decErr = err
				return
			}
		}
		decStream = buf.Bytes()
		decRaw = int64(frames * f.NAtoms() * 12)
	})
	if decErr != nil {
		b.Fatal(decErr)
	}
	return decStream, decRaw
}

// BenchmarkParallelDecode measures multi-frame stream decode throughput:
// the serial Reader baseline against ParallelReader at 1/2/4/8 workers.
// The stream is fully preloaded in memory (bytes.Reader), so the numbers
// are pure decode with no I/O confound. MB/s is raw coordinate payload;
// the acceptance bar is >=3x over serial at 4 workers, gated in CI by
// `make bench-check` (and skipped automatically on runners with fewer
// schedulable CPUs than workers — see cmd/benchjson). Each workers-N run
// also reports per-worker utilization (busy time relative to the busiest
// worker, from ParallelReader.WorkerBusy), so flat scaling is diagnosable
// from the JSON artifact: near-1.0 everywhere means the pool is balanced
// and the bottleneck is elsewhere.
func BenchmarkParallelDecode(b *testing.B) {
	stream, raw := parallelDecodeStream(b)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(raw)
		for i := 0; i < b.N; i++ {
			if _, err := xtc.NewReader(bytes.NewReader(stream)).ReadAll(); err != nil {
				b.Fatal(err)
			}
		}
		reportCPUs(b)
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(raw)
			busy := make([]int64, workers)
			for i := 0; i < b.N; i++ {
				pr := xtc.NewParallelReader(bytes.NewReader(stream), workers)
				if _, err := pr.ReadAll(); err != nil {
					b.Fatal(err)
				}
				for w, d := range pr.WorkerBusy() {
					busy[w] += d.Nanoseconds()
				}
				pr.Close()
			}
			var busiest int64
			for _, ns := range busy {
				if ns > busiest {
					busiest = ns
				}
			}
			for w, ns := range busy {
				util := 0.0
				if busiest > 0 {
					util = float64(ns) / float64(busiest)
				}
				b.ReportMetric(util, fmt.Sprintf("w%d_util", w))
			}
			reportCPUs(b)
		})
	}
}

// BenchmarkPlaybackPrefetch prices the prefetch decorator on the viewer's
// replay patterns: virtual stall seconds (vstall) with and without
// prediction, over a cache deliberately too small for the working set.
func BenchmarkPlaybackPrefetch(b *testing.B) {
	stream, _ := parallelDecodeStream(b)
	idx, err := xtc.BuildIndex(bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		b.Fatal(err)
	}
	ra := xtc.NewRandomAccessReader(bytes.NewReader(stream), idx)
	n := ra.Frames()
	f0, err := ra.ReadFrameAt(0)
	if err != nil {
		b.Fatal(err)
	}
	budget := 3 * xtc.RawFrameSize(f0.NAtoms())
	patterns := []struct {
		name    string
		pattern []int
	}{
		{"sequential", vmd.Sequential(n)},
		{"back-and-forth", vmd.BackAndForth(n, 3)},
	}
	for _, pat := range patterns {
		for _, prefetch := range []bool{false, true} {
			name := pat.name + "/plain"
			if prefetch {
				name = pat.name + "/prefetch"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var stall float64
				for i := 0; i < b.N; i++ {
					env := sim.NewEnv()
					s := vmd.NewSession(env, 0, vmd.ComputeCost{})
					var src vmd.FrameSource
					var pf *vmd.PrefetchSource
					if prefetch {
						pf = s.NewPrefetchSource(ra, idx, 4, 8)
						src = pf
					} else {
						src = s.ChargeDecompression(ra, idx)
					}
					cache := s.NewFrameCache(src, budget)
					st, err := s.Play(cache, pat.pattern)
					if err != nil {
						b.Fatal(err)
					}
					if pf != nil {
						pf.Stop()
					}
					cache.Release()
					stall = st.StallSec
				}
				b.ReportMetric(stall, "vstall")
				reportCPUs(b)
			})
		}
	}
}

// --- Ablation benches ----------------------------------------------------

// ablationDataset builds a small dataset once.
var (
	ablOnce sync.Once
	ablPDB  []byte
	ablXTC  []byte
)

func ablationDataset(b *testing.B) ([]byte, []byte) {
	b.Helper()
	ablOnce.Do(func() {
		var err error
		ablPDB, ablXTC, err = generate(gpcr.Scaled(20), 40)
		if err != nil {
			b.Fatal(err)
		}
	})
	return ablPDB, ablXTC
}

func generate(cfg gpcr.Config, frames int) ([]byte, []byte, error) {
	p, err := cluster.NewSSDServer()
	if err != nil {
		return nil, nil, err
	}
	ds, err := p.Stage("g", cfg, frames)
	if err != nil {
		return nil, nil, err
	}
	traj, err := vfs.ReadFile(p.Traditional, ds.CompressedPath)
	if err != nil {
		return nil, nil, err
	}
	return ds.PDB, traj, nil
}

// BenchmarkAblationOffload compares where the pre-processing CPU burns:
// storage-side (ADA ingest once, cheap tagged reads) vs compute-side
// (decompress + scan on every load). Reported vsec is the compute node's
// CPU time per load.
func BenchmarkAblationOffload(b *testing.B) {
	b.Run("compute-side", func(b *testing.B) {
		var cpu float64
		for i := 0; i < b.N; i++ {
			p, err := cluster.NewSSDServer()
			if err != nil {
				b.Fatal(err)
			}
			ds, err := p.Stage("g", gpcr.Scaled(20), 40)
			if err != nil {
				b.Fatal(err)
			}
			mp, err := bench.RunMeasured(p, ds, bench.CBase)
			if err != nil {
				b.Fatal(err)
			}
			cpu = mp.Profile.TotalPrefix("compute.cpu.decompress") +
				mp.Profile.TotalPrefix("compute.cpu.scan")
		}
		b.ReportMetric(cpu, "vsec")
	})
	b.Run("storage-side", func(b *testing.B) {
		var cpu float64
		for i := 0; i < b.N; i++ {
			p, err := cluster.NewSSDServer()
			if err != nil {
				b.Fatal(err)
			}
			ds, err := p.Stage("g", gpcr.Scaled(20), 40)
			if err != nil {
				b.Fatal(err)
			}
			mp, err := bench.RunMeasured(p, ds, bench.ADAProtein)
			if err != nil {
				b.Fatal(err)
			}
			cpu = mp.Profile.TotalPrefix("compute.cpu.decompress") +
				mp.Profile.TotalPrefix("compute.cpu.scan")
		}
		b.ReportMetric(cpu, "vsec")
	})
}

// BenchmarkAblationTags compares ingest cost and subset sizes at the two
// categorizer granularities.
func BenchmarkAblationTags(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	for _, g := range []core.Granularity{core.Coarse, core.Fine} {
		b.Run(g.String(), func(b *testing.B) {
			b.ReportAllocs()
			var subsets int
			for i := 0; i < b.N; i++ {
				store, err := plfs.New(
					plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
					plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
				)
				if err != nil {
					b.Fatal(err)
				}
				a := core.New(store, nil, core.Options{Granularity: g})
				rep, err := a.Ingest("/g", pdbBytes, bytes.NewReader(traj))
				if err != nil {
					b.Fatal(err)
				}
				subsets = len(rep.Subsets)
			}
			b.ReportMetric(float64(subsets), "subsets")
		})
	}
}

// BenchmarkAblationPlacement compares the virtual read time of the protein
// subset when it lands on SSD vs HDD — the hybrid placement decision.
func BenchmarkAblationPlacement(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	cases := []struct {
		name string
		dev  device.Device
	}{
		{"protein-on-ssd", device.NVMe256GB()},
		{"protein-on-hdd", device.WDBlue1TB()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				env := sim.NewEnv()
				fast := blockfs.New("be", c.dev, env)
				store, err := plfs.New(plfs.Backend{Name: "be", FS: fast, Mount: "/m"})
				if err != nil {
					b.Fatal(err)
				}
				a := core.New(store, env, core.Options{})
				if _, err := a.Ingest("/g", pdbBytes, bytes.NewReader(traj)); err != nil {
					b.Fatal(err)
				}
				start := env.Clock.Now()
				sr, err := a.OpenSubset("/g", core.TagProtein)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := sr.ReadFrame(); err != nil {
						break
					}
				}
				sr.Close()
				vsec = env.Clock.Now() - start
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}

// BenchmarkAblationParallelIngest compares the serial ingest loop against
// the pipelined one (decoder + per-subset writers on separate goroutines):
// real ns/op for the host, vsec for the modeled multi-core storage node.
func BenchmarkAblationParallelIngest(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	mkADA := func(env *sim.Env) *core.ADA {
		store, err := plfs.New(
			plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
			plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
		)
		if err != nil {
			b.Fatal(err)
		}
		return core.New(store, env, core.Options{Granularity: core.Fine})
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		var vsec float64
		for i := 0; i < b.N; i++ {
			env := sim.NewEnv()
			if _, err := mkADA(env).Ingest("/g", pdbBytes, bytes.NewReader(traj)); err != nil {
				b.Fatal(err)
			}
			vsec = env.Clock.Now()
		}
		b.ReportMetric(vsec, "vsec")
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		var vsec float64
		for i := 0; i < b.N; i++ {
			env := sim.NewEnv()
			if _, err := mkADA(env).IngestParallel("/g", pdbBytes, bytes.NewReader(traj), 4); err != nil {
				b.Fatal(err)
			}
			vsec = env.Clock.Now()
		}
		b.ReportMetric(vsec, "vsec")
	})
}

// BenchmarkIngestParallel measures end-to-end ingest wire speed (MB/s of
// decompressed trajectory data through categorize + split + write) over
// in-memory backends, serial vs pipelined. This is the CI-gated number for
// the wire-speed ingest work: it exercises the fused encode path, the
// allocation-free subset split, and the batched write fan-out together.
func BenchmarkIngestParallel(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	mkADA := func() *core.ADA {
		store, err := plfs.New(
			plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
			plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
		)
		if err != nil {
			b.Fatal(err)
		}
		return core.New(store, nil, core.Options{Granularity: core.Fine})
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := mkADA().Ingest("/g", pdbBytes, bytes.NewReader(traj))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.SetBytes(rep.Raw)
			}
		}
		reportCPUs(b)
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := mkADA().IngestParallel("/g", pdbBytes, bytes.NewReader(traj), 4)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.SetBytes(rep.Raw)
			}
		}
		reportCPUs(b)
	})
}

// BenchmarkIngestOverhead prices the runtime-metrics layer: the same
// end-to-end ingest over bare MemFS backends ("raw") and with every
// storage layer instrumented ("instrumented" — vfs.Instrument wrappers on
// both backends plus container and ingest counters reporting into a
// private registry). Both variants use a fresh registry for the
// always-on ingest counters, so the delta isolates the instrumentation
// tax; the acceptance bar is <5% wall time.
func BenchmarkIngestOverhead(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	run := func(b *testing.B, instrumented bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg := metrics.NewRegistry()
			mkFS := func(name string) vfs.FS {
				var fsys vfs.FS = vfs.NewMemFS()
				if instrumented {
					fsys = vfs.Instrument(fsys, reg, "fs."+name)
				}
				return fsys
			}
			store, err := plfs.New(
				plfs.Backend{Name: "ssd", FS: mkFS("ssd"), Mount: "/m1"},
				plfs.Backend{Name: "hdd", FS: mkFS("hdd"), Mount: "/m2"},
			)
			if err != nil {
				b.Fatal(err)
			}
			store.SetMetrics(reg)
			a := core.New(store, nil, core.Options{Metrics: reg})
			if _, err := a.Ingest("/g", pdbBytes, bytes.NewReader(traj)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("raw", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkChecksumOverhead prices the durability layer's end-to-end
// checksums: the same serial ingest with CRC32C disabled ("off") and
// enabled ("on" — per-frame index checksums, whole-stream subset CRC32Cs,
// and the manifest integrity map). The acceptance bar is <5% wall time.
func BenchmarkChecksumOverhead(b *testing.B) {
	pdbBytes, traj := ablationDataset(b)
	run := func(b *testing.B, disabled bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store, err := plfs.New(
				plfs.Backend{Name: "ssd", FS: vfs.NewMemFS(), Mount: "/m1"},
				plfs.Backend{Name: "hdd", FS: vfs.NewMemFS(), Mount: "/m2"},
			)
			if err != nil {
				b.Fatal(err)
			}
			a := core.New(store, nil, core.Options{
				Metrics:          metrics.NewRegistry(),
				DisableChecksums: disabled,
			})
			if _, err := a.Ingest("/g", pdbBytes, bytes.NewReader(traj)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, true) })
	b.Run("on", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationStoreCompressed compares ADA's decompress-on-ingest
// design against the alternative of storing the compressed original and
// paying decompression on every read (approximated by the C path, which is
// exactly that read-and-decompress work).
func BenchmarkAblationStoreCompressed(b *testing.B) {
	modes := []struct {
		name string
		sc   bench.Scenario
	}{
		{"store-decompressed", bench.ADAProtein},
		{"store-compressed", bench.CBase},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				p, err := cluster.NewSSDServer()
				if err != nil {
					b.Fatal(err)
				}
				ds, err := p.Stage("g", gpcr.Scaled(20), 40)
				if err != nil {
					b.Fatal(err)
				}
				mp, err := bench.RunMeasured(p, ds, m.sc)
				if err != nil {
					b.Fatal(err)
				}
				vsec = mp.Turnaround
			}
			b.ReportMetric(vsec, "vsec")
		})
	}
}
