package ada_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	ada "repro"
)

// newStore builds a two-backend in-memory container store.
func newStore(t *testing.T) *ada.ContainerStore {
	t.Helper()
	store, err := ada.NewContainerStore(
		ada.Backend{Name: "ssd", FS: ada.NewMemFS(), Mount: "/mnt1"},
		ada.Backend{Name: "hdd", FS: ada.NewMemFS(), Mount: "/mnt2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestQuickstartFlow(t *testing.T) {
	acq := ada.New(newStore(t), nil, ada.Options{})
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(100), 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acq.Ingest("/bar.xtc", pdbBytes, bytes.NewReader(xtcBytes))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 5 || rep.Raw <= rep.Compressed {
		t.Fatalf("report = %+v", rep)
	}
	sub, err := acq.OpenSubset("/bar.xtc", ada.TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	frames := 0
	for {
		f, err := sub.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.NAtoms() != sub.Info.NAtoms {
			t.Fatalf("frame atoms = %d, want %d", f.NAtoms(), sub.Info.NAtoms)
		}
		frames++
	}
	if frames != 5 {
		t.Errorf("streamed %d frames", frames)
	}

	names, err := acq.Datasets()
	if err != nil || len(names) != 1 || names[0] != "/bar.xtc" {
		t.Errorf("Datasets = %v, %v", names, err)
	}
	if err := acq.Remove("/bar.xtc"); err != nil {
		t.Fatal(err)
	}
	if names, _ := acq.Datasets(); len(names) != 0 {
		t.Errorf("after Remove: %v", names)
	}
}

func TestFacadeSessionOOM(t *testing.T) {
	p, err := ada.NewFatNode()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := p.Stage("g", ada.ScaledSystem(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	p.MemCapacity = ds.Raw / 2
	s := p.NewSession()
	if err := s.MolNew(p.Traditional, ds.PDBPath); err != nil {
		t.Fatal(err)
	}
	err = s.LoadRaw(p.Traditional, ds.RawPath)
	if !errors.Is(err, ada.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFacadeSchema(t *testing.T) {
	schema, err := ada.ParseSchema([]byte(`{
	  "name": "t",
	  "rules": [{"tag": "active", "categories": ["protein", "ligand"]}],
	  "default_tag": "inactive",
	  "placement": {"active": "ssd", "inactive": "hdd"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	acq := ada.New(newStore(t), nil, ada.Options{Schema: schema})
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(150), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acq.Ingest("/s", pdbBytes, bytes.NewReader(xtcBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Subsets) != 2 || rep.Subsets["active"] == 0 || rep.Subsets["inactive"] == 0 {
		t.Errorf("subsets = %v", rep.Subsets)
	}
}

func TestFacadeSelect(t *testing.T) {
	sys, err := ada.ScaledSystem(150).Build()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ada.Select(sys.Structure, "protein or ligand")
	if err != nil {
		t.Fatal(err)
	}
	counts := sys.Structure.CategoryCounts()
	if sel.Count() != counts[0]+counts[4] { // protein + ligand
		t.Errorf("selection = %d atoms", sel.Count())
	}
}

func TestFacadePlayback(t *testing.T) {
	acq := ada.New(newStore(t), nil, ada.Options{})
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(150), 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acq.Ingest("/p", pdbBytes, bytes.NewReader(xtcBytes)); err != nil {
		t.Fatal(err)
	}
	sub, err := acq.OpenSubsetAt("/p", ada.TagProtein)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s := ada.NewSession(nil, 0, ada.ComputeCost{})
	cache := s.NewFrameCache(sub, 1<<30)
	stats, err := s.Play(cache, ada.BackAndForthPattern(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesShown != 18 || stats.Cache.Misses != 6 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFacadeIngestParallelAndFormats(t *testing.T) {
	acq := ada.New(newStore(t), nil, ada.Options{})
	pdbBytes, xtcBytes, err := ada.GenerateTrajectory(ada.ScaledSystem(150), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acq.IngestParallel("/par", pdbBytes, bytes.NewReader(xtcBytes), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := acq.IngestTrajectory("/adapter", pdbBytes,
		ada.NewXTCTrajectory(bytes.NewReader(xtcBytes))); err != nil {
		t.Fatal(err)
	}
	names, err := acq.Datasets()
	if err != nil || len(names) != 2 {
		t.Errorf("Datasets = %v, %v", names, err)
	}
}

func TestFacadeBanner(t *testing.T) {
	if !strings.Contains(ada.String(), ada.Version) {
		t.Errorf("banner %q missing version", ada.String())
	}
}
